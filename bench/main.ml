(* Benchmark harness: one Bechamel group per paper artifact.

   - table1/*: the five symbolic tests on the original PLIC (the
     workload behind Table 1), at benchmark scale;
   - table2/*: time-to-first-detection for each injected fault (the
     workload behind Table 2);
   - ablations: PK vs heavyweight-SystemC-style kernel (Section 5.2's
     motivation), integer vs float sc_time (Section 4.3), solver caches
     on/off, and first-error vs exhaustive exploration (Section 5.3).

   After the micro-benchmarks the harness prints the actual Table 1 and
   Table 2 reproductions at the configured scale (SYMSYSC_SOURCES,
   default 8; the FE310 value is 51).

   Run with:  dune exec bench/main.exe *)

open Bechamel
open Toolkit

module Engine = Symex.Engine
module Config = Plic.Config
module Fault = Plic.Fault

let getenv_int name default =
  match Sys.getenv_opt name with
  | Some v -> (try int_of_string v with Failure _ -> default)
  | None -> default

(* SYMSYSC_BENCH_SMOKE=1 runs every group once with a tiny quota and a
   scaled-down table reproduction — enough for CI to prove that the
   harness and both BENCH_*.json files stay generatable without paying
   the full measurement cost. *)
let smoke =
  match Sys.getenv_opt "SYMSYSC_BENCH_SMOKE" with
  | Some "" | Some "0" | None -> false
  | Some _ -> true

let bench_sources = 4
let bench_limits =
  { Engine.no_limits with Engine.max_paths = Some 400 }

let bench_session = Engine.Session.make ~limits:bench_limits ()

let first_error_session =
  { bench_session with Engine.Session.stop_after_errors = Some 1 }

let params variant faults =
  Symsysc.Tests.with_faults faults
    (Symsysc.Tests.with_variant variant
       (Symsysc.Tests.scaled_params ~num_sources:bench_sources ~t5_max_len:8))

(* ------------------------------------------------------------------ *)
(* Table 1 workload: one bench per test                                *)

let table1_tests =
  let original = params Config.Original [] in
  List.map
    (fun (name, test) ->
       Test.make ~name
         (Staged.stage (fun () ->
              ignore (Engine.Session.run bench_session (test original)))))
    Symsysc.Tests.all

(* ------------------------------------------------------------------ *)
(* Table 2 workload: time-to-first-detection per injected fault        *)

let detector_for = function
  | Fault.IF1 | Fault.IF2 | Fault.IF4 | Fault.IF5 -> "T1"
  | Fault.IF3 -> "T2"
  | Fault.IF6 -> "T3"

let table2_tests =
  List.map
    (fun fault ->
       let test =
         match Symsysc.Tests.by_name (detector_for fault) with
         | Some t -> t
         | None -> assert false
       in
       let p = params Config.Fixed [ fault ] in
       Test.make
         ~name:(Printf.sprintf "%s-by-%s" (Fault.to_string fault) (detector_for fault))
         (Staged.stage (fun () ->
              ignore (Engine.Session.run first_error_session (test p)))))
    Fault.all

(* ------------------------------------------------------------------ *)
(* Kernel ablation: PK vs heavyweight SystemC-style kernel             *)

let pk_workload () =
  let sched = Pk.Scheduler.create () in
  let ev = Pk.Event.make "e" in
  let n = ref 0 in
  Pk.Scheduler.spawn sched
    (Pk.Process.make "w" (fun () ->
         incr n;
         Pk.Process.Wait_event ev));
  Pk.Scheduler.run_ready sched;
  for _ = 1 to 500 do
    Pk.Scheduler.notify_at sched ev (Pk.Sc_time.ns 10);
    ignore (Pk.Scheduler.step sched)
  done;
  assert (!n = 501)

let heavy_workload () =
  let k = Pk.Heavy_kernel.create () in
  let ev = Pk.Heavy_kernel.new_event k in
  let n = ref 0 in
  Pk.Heavy_kernel.spawn k "w" (fun () ->
      incr n;
      Pk.Heavy_kernel.Wait_event ev);
  for _ = 1 to 500 do
    Pk.Heavy_kernel.notify_after k ev 1e-8;
    ignore (Pk.Heavy_kernel.step k)
  done;
  assert (!n = 501)

let kernel_tests =
  [
    Test.make ~name:"peripheral-kernel" (Staged.stage pk_workload);
    Test.make ~name:"systemc-style-heavy" (Staged.stage heavy_workload);
  ]

(* ------------------------------------------------------------------ *)
(* sc_time ablation: integer vs float arithmetic                       *)

let int_time_workload () =
  let t = ref Pk.Sc_time.zero in
  for i = 1 to 10_000 do
    t := Pk.Sc_time.add !t (Pk.Sc_time.ns i);
    if Pk.Sc_time.(!t > Pk.Sc_time.us 1) then t := Pk.Sc_time.zero
  done

let float_time_workload () =
  let t = ref 0.0 in
  for i = 1 to 10_000 do
    t := !t +. (float_of_int i *. 1e-9);
    if !t > 1e-6 then t := 0.0
  done;
  ignore !t

let time_tests =
  [
    Test.make ~name:"integer-ps" (Staged.stage int_time_workload);
    Test.make ~name:"float-seconds" (Staged.stage float_time_workload);
  ]

(* ------------------------------------------------------------------ *)
(* Solver-cache ablation                                               *)

let solver_workload () =
  (* A fixed family of queries with shared structure, as exploration
     produces: caches should make the repeats nearly free. *)
  let x = Smt.Expr.fresh_var "bench_x" 32 in
  let y = Smt.Expr.fresh_var "bench_y" 32 in
  for k = 1 to 12 do
    let q =
      [
        Smt.Expr.ult x (Smt.Expr.int ~width:32 50);
        Smt.Expr.ugt (Smt.Expr.add x y) (Smt.Expr.int ~width:32 k);
      ]
    in
    ignore (Smt.Solver.is_sat q);
    ignore (Smt.Solver.is_sat q)
  done

let solver_tests =
  [
    Test.make ~name:"caches-on"
      (Staged.stage (fun () ->
           Smt.Solver.set_caching true;
           solver_workload ()));
    Test.make ~name:"caches-off"
      (Staged.stage (fun () ->
           Smt.Solver.set_caching false;
           Smt.Solver.clear_caches ();
           solver_workload ();
           Smt.Solver.set_caching true));
  ]

(* ------------------------------------------------------------------ *)
(* Independence-slicing ablation: the whole Table 1 workload with the
   solver's constraint-independence layer on vs off                    *)

let table1_workload () =
  let original = params Config.Original [] in
  List.iter
    (fun (_, test) -> ignore (Engine.Session.run bench_session (test original)))
    Symsysc.Tests.all

let independence_tests =
  [
    Test.make ~name:"independence-on"
      (Staged.stage (fun () ->
           Smt.Solver.set_independence true;
           Smt.Solver.clear_caches ();
           table1_workload ()));
    Test.make ~name:"independence-off"
      (Staged.stage (fun () ->
           Smt.Solver.set_independence false;
           Smt.Solver.clear_caches ();
           table1_workload ();
           Smt.Solver.set_independence true));
  ]

(* ------------------------------------------------------------------ *)
(* Incremental-solving ablation: the whole Table 1 workload with the
   solver's scope reuse (retained CDCL instances under guard
   assumptions) on vs off                                              *)

let incremental_tests =
  [
    Test.make ~name:"incremental-on"
      (Staged.stage (fun () ->
           Smt.Solver.set_incremental true;
           Smt.Solver.clear_caches ();
           table1_workload ()));
    Test.make ~name:"incremental-off"
      (Staged.stage (fun () ->
           Smt.Solver.set_incremental false;
           Smt.Solver.clear_caches ();
           table1_workload ();
           Smt.Solver.set_incremental true));
  ]

(* ------------------------------------------------------------------ *)
(* Snapshot-forking ablation: the whole Table 1 workload with fork
   fast-forward on vs off (pure decision-prefix replay)                *)

let snapshot_workload snapshots () =
  let original = params Config.Original [] in
  let session = { bench_session with Engine.Session.snapshots } in
  Smt.Solver.clear_caches ();
  List.iter
    (fun (_, test) -> ignore (Engine.Session.run session (test original)))
    Symsysc.Tests.all

let snapshot_tests =
  [
    Test.make ~name:"snapshots-on" (Staged.stage (snapshot_workload true));
    Test.make ~name:"snapshots-off" (Staged.stage (snapshot_workload false));
  ]

(* ------------------------------------------------------------------ *)
(* First-error vs exhaustive exploration (Section 5.3's observation)   *)

let exploration_tests =
  let p = params Config.Original [] in
  let t1 =
    match Symsysc.Tests.by_name "T1" with Some t -> t | None -> assert false
  in
  [
    Test.make ~name:"first-error"
      (Staged.stage (fun () ->
           ignore (Engine.Session.run first_error_session (t1 p))));
    Test.make ~name:"exhaustive"
      (Staged.stage (fun () -> ignore (Engine.Session.run bench_session (t1 p))));
  ]

(* ------------------------------------------------------------------ *)
(* Scaling: parallel workers on one exploration                        *)

let scaling_workers = [ 1; 2; 4 ]

let scaling_tests =
  let p = params Config.Original [] in
  let t1 =
    match Symsysc.Tests.by_name "T1" with Some t -> t | None -> assert false
  in
  List.map
    (fun workers ->
       let session = { bench_session with Engine.Session.workers } in
       Test.make ~name:(Printf.sprintf "workers-%d" workers)
         (Staged.stage (fun () -> ignore (Engine.Session.run session (t1 p)))))
    scaling_workers

(* ------------------------------------------------------------------ *)
(* Baseline: symbolic execution vs random testing on the IF6 harness   *)

let baseline_tests =
  let p =
    Symsysc.Tests.with_faults [ Fault.IF6 ]
      (params Config.Fixed [ Fault.IF6 ])
  in
  let harness = Symsysc.Tests.masking_harness p in
  [
    Test.make ~name:"symbolic-first-error"
      (Staged.stage (fun () ->
           ignore (Engine.Session.run first_error_session harness)));
    Test.make ~name:"random-testing"
      (Staged.stage (fun () ->
           ignore (Engine.random_test ~seed:11 ~max_trials:100_000 harness)));
  ]

(* ------------------------------------------------------------------ *)
(* Second peripheral: the CLINT comparator property                    *)

let clint_property () =
  let sched = Pk.Scheduler.create () in
  let clint = Clint.create Clint.Config.fe310 sched in
  let port = Clint.Port.create () in
  Clint.connect clint port;
  Pk.Scheduler.run_ready sched;
  let cmp = Engine.fresh "mtimecmp" 64 in
  Engine.assume
    (Smt.Expr.and_
       (Smt.Expr.uge cmp (Smt.Expr.int ~width:64 1))
       (Smt.Expr.ule cmp (Smt.Expr.int ~width:64 8)));
  let data =
    Array.init 8 (fun i -> Smt.Expr.extract ~hi:((8 * i) + 7) ~lo:(8 * i) cmp)
  in
  let p =
    Tlm.Payload.make_write
      ~addr:(Symex.Value.of_int Clint.mtimecmp_base)
      ~len:(Symex.Value.of_int 8) ~data
  in
  ignore (Clint.transport clint p Pk.Sc_time.zero);
  Pk.Scheduler.run_until sched
    (Pk.Sc_time.mul_int Clint.Config.fe310.Clint.Config.tick 10);
  Engine.check ~site:"clint:fired" (Smt.Expr.bool port.Clint.Port.timer_pending)

let clint_tests =
  [
    Test.make ~name:"timer-comparator-sweep"
      (Staged.stage (fun () ->
           ignore (Engine.Session.run bench_session clint_property)));
  ]

(* ------------------------------------------------------------------ *)
(* Resilience: checkpoint serialization and checkpointed exploration   *)

let resilience_tests =
  let original = params Config.Original [] in
  let t4 =
    match Symsysc.Tests.by_name "t4" with
    | Some t -> t
    | None -> assert false
  in
  (* A representative checkpoint: T4 truncated after a few paths (T4
     explores ~50 paths at bench scale, so the frontier is non-empty
     and the resume bench does real work). *)
  let sample_checkpoint =
    let saved = ref None in
    let session =
      { bench_session with
        Engine.Session.limits = { bench_limits with Engine.max_paths = Some 5 };
        checkpoint =
          Some
            { Engine.write = (fun ck -> saved := Some ck);
              every_s = infinity } }
    in
    ignore (Engine.Session.run ~label:"t4" session (t4 original));
    match !saved with Some ck -> ck | None -> assert false
  in
  let sample_json = Obs.Json.to_string (Symex.Checkpoint.to_json sample_checkpoint) in
  [
    Test.make ~name:"checkpoint-roundtrip"
      (Staged.stage (fun () ->
           match Obs.Json.of_string sample_json with
           | Error e -> failwith e
           | Ok j ->
             (match Symex.Checkpoint.of_json j with
              | Ok _ -> ()
              | Error e -> failwith e)));
    (* Exploration with a snapshot between every two paths — the upper
       bound of checkpointing overhead (the CLI default is every 30s). *)
    Test.make ~name:"checkpointed-exploration"
      (Staged.stage (fun () ->
           let sink = ref None in
           let session =
             { bench_session with
               Engine.Session.checkpoint =
                 Some
                   { Engine.write = (fun ck -> sink := Some ck);
                     every_s = 0.0 } }
           in
           ignore (Engine.Session.run ~label:"t4" session (t4 original))));
    Test.make ~name:"resume-from-checkpoint"
      (Staged.stage (fun () ->
           let session =
             { bench_session with
               Engine.Session.resume = Some sample_checkpoint }
           in
           ignore (Engine.Session.run ~label:"t4" session (t4 original))));
  ]

(* ------------------------------------------------------------------ *)
(* Bechamel driver                                                     *)

let bench_run_limit = if smoke then 1 else 50
let bench_quota_seconds = if smoke then 0.25 else 2.0

(* (group, test, mean ms/run) rows accumulated for BENCH_1.json. *)
let json_rows : (string * string * float option) list ref = ref []

let benchmark_group name tests =
  let grouped = Test.make_grouped ~name ~fmt:"%s/%s" tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:bench_run_limit
      ~quota:(Time.second bench_quota_seconds) ~stabilize:false ()
  in
  let raw = Benchmark.all cfg instances grouped in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun k v acc -> (k, v) :: acc) results [] in
  let rows = List.sort (fun (a, _) (b, _) -> String.compare a b) rows in
  List.iter
    (fun (test_name, ols_result) ->
       let estimate =
         match Analyze.OLS.estimates ols_result with
         | Some [ ns ] -> Some (ns /. 1e6)
         | Some _ | None -> None
       in
       json_rows := (name, test_name, estimate) :: !json_rows;
       match estimate with
       | Some ms -> Format.printf "  %-40s %12.3f ms/run@." test_name ms
       | None -> Format.printf "  %-40s (no estimate)@." test_name)
    rows

(* Machine-readable results, one file per bench invocation, so the perf
   trajectory of the repo is diffable across PRs. *)
let write_bench_json path =
  let buf = Buffer.create 4096 in
  let groups =
    List.fold_left
      (fun acc (g, _, _) -> if List.mem g acc then acc else g :: acc)
      []
      (List.rev !json_rows)
    |> List.rev
  in
  Buffer.add_string buf "{\"schema\":\"symsysc-bench-v1\",";
  Printf.bprintf buf "\"runs\":%d,\"quota_seconds\":%.2f,\"groups\":["
    bench_run_limit bench_quota_seconds;
  List.iteri
    (fun gi g ->
       if gi > 0 then Buffer.add_char buf ',';
       let tests =
         List.filter (fun (g', _, _) -> g' = g) (List.rev !json_rows)
       in
       let means = List.filter_map (fun (_, _, m) -> m) tests in
       let group_mean =
         match means with
         | [] -> 0.0
         | _ ->
           List.fold_left ( +. ) 0.0 means /. float_of_int (List.length means)
       in
       Printf.bprintf buf "{\"name\":\"%s\",\"mean_ms\":%.6f,\"tests\":["
         (Obs.Export.escape_json g) group_mean;
       List.iteri
         (fun ti (_, t, m) ->
            if ti > 0 then Buffer.add_char buf ',';
            match m with
            | Some ms ->
              Printf.bprintf buf "{\"name\":\"%s\",\"mean_ms\":%.6f}"
                (Obs.Export.escape_json t) ms
            | None ->
              Printf.bprintf buf "{\"name\":\"%s\",\"mean_ms\":null}"
                (Obs.Export.escape_json t))
         tests;
       Buffer.add_string buf "]}")
    groups;
  Buffer.add_string buf "]}\n";
  Obs.Json.write_atomic path (Buffer.contents buf)

(* ------------------------------------------------------------------ *)
(* BENCH_2.json: instrumented independence on/off comparison.  One
   cold-cache exploration per test per mode, recording solver activity
   and the found error sites, so the sat-call/cache-hit effect of the
   slicing layer (and the bug-set equivalence of the two modes) is
   machine-checkable across PRs. *)

type mode_row = {
  m_test : string;
  m_stats : Smt.Solver.Stats.t;
  m_wall_ms : float;
  m_sites : string list;
}

(* The slicing payoff grows with the number of independent interrupt
   sources, so measure at the paper's reduced scale (8 sources) rather
   than the 4-source micro-bench scale — except under smoke, where
   only generatability matters. *)
let independence_sources = if smoke then bench_sources else 8

let instrumented_mode independence =
  Smt.Solver.set_independence independence;
  let original =
    Symsysc.Tests.with_faults []
      (Symsysc.Tests.with_variant Config.Original
         (Symsysc.Tests.scaled_params ~num_sources:independence_sources
            ~t5_max_len:(if smoke then 8 else 16)))
  in
  List.map
    (fun (name, test) ->
       Smt.Solver.clear_caches ();
       let session =
         if smoke then bench_session
         else
           Engine.Session.make
             ~limits:{ Engine.no_limits with Engine.max_paths = Some 20_000 }
             ()
       in
       let before = Smt.Solver.Stats.get () in
       let report = Engine.Session.run session (test original) in
       let stats = Smt.Solver.Stats.sub (Smt.Solver.Stats.get ()) before in
       {
         m_test = name;
         m_stats = stats;
         m_wall_ms = report.Engine.wall_time *. 1000.0;
         m_sites =
           List.sort String.compare
             (List.map
                (fun (e : Symex.Error.t) -> e.Symex.Error.site)
                report.Engine.errors);
       })
    Symsysc.Tests.all

let write_independence_json path =
  let on_rows = instrumented_mode true in
  let off_rows = instrumented_mode false in
  Smt.Solver.set_independence true;
  Smt.Solver.clear_caches ();
  let total f rows =
    List.fold_left (fun acc r -> acc + f r.m_stats) 0 rows
  in
  let sat_on = total (fun s -> s.Smt.Solver.Stats.sat_calls) on_rows in
  let sat_off = total (fun s -> s.Smt.Solver.Stats.sat_calls) off_rows in
  let hit_rate rows =
    let slices = total (fun s -> s.Smt.Solver.Stats.slices) rows in
    let hits = total (fun s -> s.Smt.Solver.Stats.slice_hits) rows in
    if slices = 0 then 0.0 else float_of_int hits /. float_of_int slices
  in
  let buf = Buffer.create 4096 in
  let row_json r =
    let s = r.m_stats in
    Printf.bprintf buf
      "{\"test\":\"%s\",\"queries\":%d,\"slices\":%d,\"slice_hits\":%d,\
       \"cache_hits\":%d,\"cex_hits\":%d,\"sat_calls\":%d,\
       \"sat_conflicts\":%d,\"wall_ms\":%.3f,\"error_sites\":["
      (Obs.Export.escape_json r.m_test)
      s.Smt.Solver.Stats.queries s.Smt.Solver.Stats.slices
      s.Smt.Solver.Stats.slice_hits s.Smt.Solver.Stats.cache_hits
      s.Smt.Solver.Stats.cex_hits s.Smt.Solver.Stats.sat_calls
      s.Smt.Solver.Stats.sat_conflicts r.m_wall_ms;
    List.iteri
      (fun i site ->
         if i > 0 then Buffer.add_char buf ',';
         Printf.bprintf buf "\"%s\"" (Obs.Export.escape_json site))
      r.m_sites;
    Buffer.add_string buf "]}"
  in
  let mode_json name rows =
    Printf.bprintf buf "\"%s\":[" name;
    List.iteri
      (fun i r ->
         if i > 0 then Buffer.add_char buf ',';
         row_json r)
      rows;
    Buffer.add_char buf ']'
  in
  Buffer.add_string buf "{\"schema\":\"symsysc-bench-independence-v1\",";
  Printf.bprintf buf "\"sources\":%d," independence_sources;
  mode_json "independence_on" on_rows;
  Buffer.add_char buf ',';
  mode_json "independence_off" off_rows;
  (* The aggregate hit rate is dominated by T5 (high in both modes);
     the per-test gain is what shows the slicing payoff, so report the
     best one explicitly (T2's path prefixes stay cached when fresh
     interrupt-source variables are appended). *)
  let per_test_rate r =
    let s = r.m_stats in
    if s.Smt.Solver.Stats.slices = 0 then 0.0
    else
      float_of_int s.Smt.Solver.Stats.slice_hits
      /. float_of_int s.Smt.Solver.Stats.slices
  in
  let best_test, best_gain =
    List.fold_left2
      (fun (bt, bg) on off ->
         let r_on = per_test_rate on and r_off = per_test_rate off in
         let gain = if r_off = 0.0 then 0.0 else (r_on -. r_off) /. r_off in
         if gain > bg then (on.m_test, gain) else (bt, bg))
      ("", 0.0) on_rows off_rows
  in
  let conflicts rows =
    total (fun s -> s.Smt.Solver.Stats.sat_conflicts) rows
  in
  Printf.bprintf buf
    ",\"summary\":{\"sat_calls_on\":%d,\"sat_calls_off\":%d,\
     \"sat_call_reduction\":%.4f,\"sat_conflicts_on\":%d,\
     \"sat_conflicts_off\":%d,\"hit_rate_on\":%.4f,\"hit_rate_off\":%.4f,\
     \"best_hit_rate_gain\":{\"test\":\"%s\",\"relative_gain\":%.4f},\
     \"same_error_sites\":%b}}\n"
    sat_on sat_off
    (if sat_off = 0 then 0.0
     else 1.0 -. (float_of_int sat_on /. float_of_int sat_off))
    (conflicts on_rows) (conflicts off_rows)
    (hit_rate on_rows) (hit_rate off_rows)
    (Obs.Export.escape_json best_test) best_gain
    (List.for_all2
       (fun a b -> a.m_test = b.m_test && a.m_sites = b.m_sites)
       on_rows off_rows);
  Obs.Json.write_atomic path (Buffer.contents buf)

(* ------------------------------------------------------------------ *)
(* BENCH_7.json: instrumented incremental on/off comparison.  One
   cold-cache exploration per test per mode, recording solver totals,
   the bit-blast profile bucket and the found error sites, so the
   payoff of scope reuse — fewer re-encodings, less bit-blast and SAT
   time — and the bug-set equivalence of the two modes stay
   machine-checkable across PRs. *)

type inc_row = {
  i_test : string;
  i_stats : Smt.Solver.Stats.t;
  i_bitblast_s : float;
  i_wall_ms : float;
  i_sites : string list;
}

let instrumented_incremental incremental =
  Smt.Solver.set_incremental incremental;
  let original =
    Symsysc.Tests.with_faults []
      (Symsysc.Tests.with_variant Config.Original
         (Symsysc.Tests.scaled_params ~num_sources:independence_sources
            ~t5_max_len:(if smoke then 8 else 16)))
  in
  List.map
    (fun (name, test) ->
       Smt.Solver.clear_caches ();
       let session =
         if smoke then bench_session
         else
           Engine.Session.make
             ~limits:{ Engine.no_limits with Engine.max_paths = Some 20_000 }
             ()
       in
       let before = Smt.Solver.Stats.get () in
       let report = Engine.Session.run session (test original) in
       let stats = Smt.Solver.Stats.sub (Smt.Solver.Stats.get ()) before in
       let bitblast =
         List.fold_left
           (fun acc ((_, stage), (b : Obs.Profile.bucket)) ->
              if stage = "bitblast" then acc +. b.Obs.Profile.b_time else acc)
           0.0 report.Engine.profile
       in
       {
         i_test = name;
         i_stats = stats;
         i_bitblast_s = bitblast;
         i_wall_ms = report.Engine.wall_time *. 1000.0;
         i_sites =
           List.sort String.compare
             (List.map
                (fun (e : Symex.Error.t) -> e.Symex.Error.site)
                report.Engine.errors);
       })
    Symsysc.Tests.all

let write_incremental_json path =
  let on_rows = instrumented_incremental true in
  let off_rows = instrumented_incremental false in
  Smt.Solver.set_incremental true;
  Smt.Solver.clear_caches ();
  let totalf f rows = List.fold_left (fun acc r -> acc +. f r) 0.0 rows in
  let totali f rows =
    List.fold_left (fun acc r -> acc + f r.i_stats) 0 rows
  in
  let solver_s rows = totalf (fun r -> r.i_stats.Smt.Solver.Stats.time) rows in
  let bitblast_s rows = totalf (fun r -> r.i_bitblast_s) rows in
  let buf = Buffer.create 4096 in
  let row_json r =
    let s = r.i_stats in
    Printf.bprintf buf
      "{\"test\":\"%s\",\"queries\":%d,\"slices\":%d,\"sat_calls\":%d,\
       \"sat_conflicts\":%d,\"scope_reused\":%d,\"scope_rebuilds\":%d,\
       \"solver_s\":%.6f,\"bitblast_s\":%.6f,\"sat_s\":%.6f,\
       \"wall_ms\":%.3f,\"error_sites\":["
      (Obs.Export.escape_json r.i_test)
      s.Smt.Solver.Stats.queries s.Smt.Solver.Stats.slices
      s.Smt.Solver.Stats.sat_calls s.Smt.Solver.Stats.sat_conflicts
      s.Smt.Solver.Stats.scope_reused s.Smt.Solver.Stats.scope_rebuilds
      s.Smt.Solver.Stats.time r.i_bitblast_s s.Smt.Solver.Stats.sat_time
      r.i_wall_ms;
    List.iteri
      (fun i site ->
         if i > 0 then Buffer.add_char buf ',';
         Printf.bprintf buf "\"%s\"" (Obs.Export.escape_json site))
      r.i_sites;
    Buffer.add_string buf "]}"
  in
  let mode_json name rows =
    Printf.bprintf buf "\"%s\":[" name;
    List.iteri
      (fun i r ->
         if i > 0 then Buffer.add_char buf ',';
         row_json r)
      rows;
    Buffer.add_char buf ']'
  in
  Buffer.add_string buf "{\"schema\":\"symsysc-bench-incremental-v1\",";
  Printf.bprintf buf "\"sources\":%d," independence_sources;
  mode_json "incremental_on" on_rows;
  Buffer.add_char buf ',';
  mode_json "incremental_off" off_rows;
  let s_on = solver_s on_rows and s_off = solver_s off_rows in
  let b_on = bitblast_s on_rows and b_off = bitblast_s off_rows in
  Printf.bprintf buf
    ",\"summary\":{\"solver_s_on\":%.6f,\"solver_s_off\":%.6f,\
     \"solver_time_reduction\":%.4f,\"bitblast_s_on\":%.6f,\
     \"bitblast_s_off\":%.6f,\"bitblast_reduction\":%.4f,\
     \"sat_calls_on\":%d,\"sat_calls_off\":%d,\"scope_reused\":%d,\
     \"scope_rebuilds\":%d,\"same_error_sites\":%b}}\n"
    s_on s_off
    (if s_off = 0.0 then 0.0 else 1.0 -. (s_on /. s_off))
    b_on b_off
    (if b_off = 0.0 then 0.0 else 1.0 -. (b_on /. b_off))
    (totali (fun s -> s.Smt.Solver.Stats.sat_calls) on_rows)
    (totali (fun s -> s.Smt.Solver.Stats.sat_calls) off_rows)
    (totali (fun s -> s.Smt.Solver.Stats.scope_reused) on_rows)
    (totali (fun s -> s.Smt.Solver.Stats.scope_rebuilds) on_rows)
    (List.for_all2
       (fun a b -> a.i_test = b.i_test && a.i_sites = b.i_sites)
       on_rows off_rows);
  Obs.Json.write_atomic path (Buffer.contents buf)

(* ------------------------------------------------------------------ *)
(* BENCH_9.json: snapshot forking vs decision-prefix replay.  One
   exploration per test per mode.  [instructions] (the DUV work the
   path set represents) is mode-independent by construction — the
   equivalence suites assert it — while [executed] = instructions -
   instructions_saved is what was actually re-executed: fast-forward
   must push the per-path executed count strictly below the replay
   baseline on every multi-path test, with identical error sites. *)

type snap_row = {
  n_test : string;
  n_wall_ms : float;
  n_paths : int;
  n_instructions : int;
  n_saved : int;
  n_snapshots : int;
  n_restores : int;
  n_sites : string list;
}

let instrumented_snapshots snapshots =
  let original =
    Symsysc.Tests.with_faults []
      (Symsysc.Tests.with_variant Config.Original
         (Symsysc.Tests.scaled_params ~num_sources:independence_sources
            ~t5_max_len:(if smoke then 8 else 16)))
  in
  let session =
    let base =
      if smoke then bench_session
      else
        Engine.Session.make
          ~limits:{ Engine.no_limits with Engine.max_paths = Some 20_000 }
          ()
    in
    { base with Engine.Session.snapshots }
  in
  List.map
    (fun (name, test) ->
       Smt.Solver.clear_caches ();
       let report = Engine.Session.run session (test original) in
       {
         n_test = name;
         n_wall_ms = report.Engine.wall_time *. 1000.0;
         n_paths = report.Engine.paths;
         n_instructions = report.Engine.instructions;
         n_saved = report.Engine.instructions_saved;
         n_snapshots = report.Engine.snapshots_taken;
         n_restores = report.Engine.snapshot_restores;
         n_sites =
           List.sort String.compare
             (List.map
                (fun (e : Symex.Error.t) -> e.Symex.Error.site)
                report.Engine.errors);
       })
    Symsysc.Tests.all

let snap_executed_per_path r =
  if r.n_paths = 0 then 0.0
  else float_of_int (r.n_instructions - r.n_saved) /. float_of_int r.n_paths

let write_snapshots_json path =
  let on_rows = instrumented_snapshots true in
  let off_rows = instrumented_snapshots false in
  let buf = Buffer.create 4096 in
  let row_json r =
    Printf.bprintf buf
      "{\"test\":\"%s\",\"wall_ms\":%.3f,\"paths\":%d,\"instructions\":%d,\
       \"instructions_saved\":%d,\"executed\":%d,\"executed_per_path\":%.3f,\
       \"snapshots_taken\":%d,\"snapshot_restores\":%d,\"error_sites\":["
      (Obs.Export.escape_json r.n_test)
      r.n_wall_ms r.n_paths r.n_instructions r.n_saved
      (r.n_instructions - r.n_saved)
      (snap_executed_per_path r)
      r.n_snapshots r.n_restores;
    List.iteri
      (fun i site ->
         if i > 0 then Buffer.add_char buf ',';
         Printf.bprintf buf "\"%s\"" (Obs.Export.escape_json site))
      r.n_sites;
    Buffer.add_string buf "]}"
  in
  let mode_json name rows =
    Printf.bprintf buf "\"%s\":[" name;
    List.iteri
      (fun i r ->
         if i > 0 then Buffer.add_char buf ',';
         row_json r)
      rows;
    Buffer.add_char buf ']'
  in
  Buffer.add_string buf "{\"schema\":\"symsysc-bench-snapshots-v1\",";
  Printf.bprintf buf "\"sources\":%d," independence_sources;
  mode_json "snapshots_on" on_rows;
  Buffer.add_char buf ',';
  mode_json "snapshots_off" off_rows;
  let wall rows = List.fold_left (fun acc r -> acc +. r.n_wall_ms) 0.0 rows in
  let saved rows = List.fold_left (fun acc r -> acc + r.n_saved) 0 rows in
  let w_on = wall on_rows and w_off = wall off_rows in
  Printf.bprintf buf
    ",\"summary\":{\"wall_ms_on\":%.3f,\"wall_ms_off\":%.3f,\
     \"instructions_saved\":%d,\"same_instructions\":%b,\
     \"executed_below_replay\":%b,\"same_error_sites\":%b}}\n"
    w_on w_off (saved on_rows)
    (List.for_all2
       (fun a b -> a.n_instructions = b.n_instructions)
       on_rows off_rows)
    (List.for_all2
       (fun a b ->
          a.n_paths <= 1
          || snap_executed_per_path a < snap_executed_per_path b)
       on_rows off_rows)
    (List.for_all2
       (fun a b -> a.n_test = b.n_test && a.n_sites = b.n_sites)
       on_rows off_rows);
  Obs.Json.write_atomic path (Buffer.contents buf)

(* ------------------------------------------------------------------ *)
(* BENCH_4.json: worker-scaling of the whole Table 1 campaign.  One
   run of all five tests per worker count; error-site equality against
   the single-worker run is machine-checked, and the speedups are
   honest wall-clock ratios on this machine — the [cores] field
   qualifies them (on a single-core runner the expected speedup is
   <= 1x, the fork/IPC overhead). *)

(* Available cores, so BENCH_4 consumers can judge the speedup column.
   Linux sysfs is enough here and the fallback is harmless elsewhere. *)
let online_cores () =
  try
    let ic = open_in "/sys/devices/system/cpu/online" in
    let line = Fun.protect ~finally:(fun () -> close_in ic) (fun () -> input_line ic) in
    List.fold_left
      (fun acc range ->
         match String.split_on_char '-' (String.trim range) with
         | [ lo; hi ] -> acc + int_of_string hi - int_of_string lo + 1
         | [ _ ] -> acc + 1
         | _ -> acc)
      0
      (String.split_on_char ',' line)
  with _ -> 1

let scaling_sources = if smoke then bench_sources else 8
let scaling_t5_len = if smoke then 8 else 16

let scaling_campaign workers =
  let scenario =
    Symsysc.Verify.scenario ~num_sources:scaling_sources
      ~t5_max_len:scaling_t5_len ~workers ()
  in
  Smt.Solver.clear_caches ();
  (workers, Symsysc.Verify.table1 scenario)

let campaign_wall reports =
  List.fold_left
    (fun acc (r : Symsysc.Report.t) ->
       acc +. r.Symsysc.Report.engine.Engine.wall_time)
    0.0 reports

let campaign_sites reports =
  List.sort_uniq String.compare
    (List.concat_map
       (fun (r : Symsysc.Report.t) ->
          List.map
            (fun (e : Symex.Error.t) -> e.Symex.Error.site)
            r.Symsysc.Report.engine.Engine.errors)
       reports)

let write_scaling_json path rows =
  let cores = online_cores () in
  let base_wall =
    match rows with (_, reports) :: _ -> campaign_wall reports | [] -> 0.0
  in
  let base_sites =
    match rows with (_, reports) :: _ -> campaign_sites reports | [] -> []
  in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"schema\":\"symsysc-bench-scaling-v1\",";
  Printf.bprintf buf "\"sources\":%d,\"t5_max_len\":%d,\"cores\":%d,\"rows\":["
    scaling_sources scaling_t5_len cores;
  List.iteri
    (fun i (workers, reports) ->
       if i > 0 then Buffer.add_char buf ',';
       let wall = campaign_wall reports in
       let total f =
         List.fold_left
           (fun acc (r : Symsysc.Report.t) -> acc + f r.Symsysc.Report.engine)
           0 reports
       in
       Printf.bprintf buf
         "{\"workers\":%d,\"wall_s\":%.3f,\"paths\":%d,\"instructions\":%d,\
          \"speedup\":%.3f,\"error_sites\":["
         workers wall
         (total (fun e -> e.Engine.paths))
         (total (fun e -> e.Engine.instructions))
         (if wall > 0.0 then base_wall /. wall else 0.0);
       List.iteri
         (fun j site ->
            if j > 0 then Buffer.add_char buf ',';
            Printf.bprintf buf "\"%s\"" (Obs.Export.escape_json site))
         (campaign_sites reports);
       Buffer.add_string buf "]}")
    rows;
  Printf.bprintf buf "],\"summary\":{\"cores\":%d,\"same_error_sites\":%b}}\n"
    cores
    (List.for_all (fun (_, reports) -> campaign_sites reports = base_sites) rows);
  Obs.Json.write_atomic path (Buffer.contents buf)

(* BENCH_8.json: pipe vs loopback-TCP transport comparison.  The same
   T1–T5 campaign runs once per worker count on each transport — local
   forked workers over pipes, then a remote worker pool dialing a
   loopback listener — and the error-site sets are machine-checked
   equal across every row.  TCP wall times on one machine price the
   framing/registration overhead, not network latency. *)

let distributed_workers = [ 1; 2; 4 ]
let distributed_sources = if smoke then bench_sources else 8
let distributed_t5_len = if smoke then 8 else 16

let dist_scenario ?listen ?workers () =
  Symsysc.Verify.scenario ~num_sources:distributed_sources
    ~t5_max_len:distributed_t5_len ?listen ?workers ()

(* One test over loopback TCP: listen on an ephemeral port, fork a
   child running the remote worker pool, explore as a master with no
   local workers. *)
let tcp_test_report ~workers name =
  let l = Symex.Transport.listen ~host:"127.0.0.1" ~port:0 () in
  let _, port = Symex.Transport.listener_addr l in
  flush stdout;
  flush stderr;
  let kid =
    match Unix.fork () with
    | 0 ->
      Unix.close (Symex.Transport.listener_fd l);
      Obs.Progress.disable ();
      Obs.Sink.reset ();
      let code =
        try
          Symsysc.Verify.serve ~host:"127.0.0.1" ~port ~workers
            (dist_scenario ()) name
        with _ -> 1
      in
      Unix._exit code
    | pid -> pid
  in
  let report =
    Symsysc.Verify.run_test
      (dist_scenario ~listen:l ~workers:0 ())
      name
  in
  Symex.Transport.close_listener l;
  ignore (Unix.waitpid [] kid);
  report

let distributed_campaigns workers =
  Smt.Solver.clear_caches ();
  let pipe = Symsysc.Verify.table1 (dist_scenario ~workers ()) in
  Smt.Solver.clear_caches ();
  let tcp =
    List.map (fun (name, _) -> tcp_test_report ~workers name)
      Symsysc.Tests.all
  in
  (workers, pipe, tcp)

let write_distributed_json path rows =
  let base_sites =
    match rows with (_, pipe, _) :: _ -> campaign_sites pipe | [] -> []
  in
  let transport_json buf reports =
    let total f =
      List.fold_left
        (fun acc (r : Symsysc.Report.t) -> acc + f r.Symsysc.Report.engine)
        0 reports
    in
    Printf.bprintf buf
      "{\"wall_s\":%.3f,\"paths\":%d,\"instructions\":%d,\"error_sites\":["
      (campaign_wall reports)
      (total (fun e -> e.Engine.paths))
      (total (fun e -> e.Engine.instructions));
    List.iteri
      (fun j site ->
         if j > 0 then Buffer.add_char buf ',';
         Printf.bprintf buf "\"%s\"" (Obs.Export.escape_json site))
      (campaign_sites reports);
    Buffer.add_string buf "]}"
  in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"schema\":\"symsysc-bench-distributed-v1\",";
  Printf.bprintf buf "\"sources\":%d,\"t5_max_len\":%d,\"cores\":%d,\"rows\":["
    distributed_sources distributed_t5_len (online_cores ());
  List.iteri
    (fun i (workers, pipe, tcp) ->
       if i > 0 then Buffer.add_char buf ',';
       Printf.bprintf buf "{\"workers\":%d,\"pipe\":" workers;
       transport_json buf pipe;
       Buffer.add_string buf ",\"tcp\":";
       transport_json buf tcp;
       Buffer.add_string buf "}")
    rows;
  Printf.bprintf buf "],\"summary\":{\"same_error_sites\":%b}}\n"
    (List.for_all
       (fun (_, pipe, tcp) ->
          campaign_sites pipe = base_sites
          && campaign_sites tcp = base_sites)
       rows);
  Obs.Json.write_atomic path (Buffer.contents buf)

(* BENCH_10.json: what the campaign service costs.  The same small
   job matrix runs twice — directly (one forked Runner per job, no
   journal) and through an in-process daemon (WAL fsyncs, supervision,
   client-frame plumbing) — and the verdicts are machine-checked
   equal.  The wall-time ratio prices the durability machinery. *)

let service_matrix =
  [
    { Service.Jobspec.default with Service.Jobspec.test = "T1";
      num_sources = bench_sources };
    { Service.Jobspec.default with
      Service.Jobspec.peripheral = "uart"; test = "loopback" };
    { Service.Jobspec.default with
      Service.Jobspec.peripheral = "clint"; test = "timer";
      mode = Service.Jobspec.Random; trials = 64; seed = Some 7 };
  ]

let bench_temp_dir tag =
  let path = Filename.temp_file ("symsysc_bench_" ^ tag) "" in
  Sys.remove path;
  Unix.mkdir path 0o755;
  path

let rec bench_rm_rf path =
  if Sys.is_directory path then begin
    Array.iter
      (fun n -> bench_rm_rf (Filename.concat path n))
      (Sys.readdir path);
    Unix.rmdir path
  end
  else Sys.remove path

let service_verdicts dir =
  List.mapi
    (fun i _ ->
       let path = Service.Runner.report_path ~journal_dir:dir (i + 1) in
       match Obs.Json.load path with
       | Ok doc ->
         Option.bind (Obs.Json.member "verdict" doc) Obs.Json.to_string_opt
         |> Option.value ~default:"missing"
       | Error _ -> "missing")
    service_matrix

let service_direct_run dir =
  let t0 = Unix.gettimeofday () in
  List.iteri
    (fun i spec ->
       flush stdout;
       flush stderr;
       match Unix.fork () with
       | 0 ->
         Obs.Progress.disable ();
         let code =
           try
             Service.Runner.exec ~journal_dir:dir ~checkpoint_every_s:1.0
               ~id:(i + 1) ~attempt:1 ~budget_scale:1.0 spec
           with _ -> 1
         in
         Unix._exit code
       | pid -> ignore (Unix.waitpid [] pid))
    service_matrix;
  Unix.gettimeofday () -. t0

let service_daemon_run dir =
  (* Pre-load the queue, then run the daemon to idle with one job at a
     time — the same sequential schedule as the direct run. *)
  let wal, records, _ = Service.Wal.open_dir dir in
  let sup =
    Service.Supervisor.create ~wal ~job_retries:0 ~backoff_seed:0 records
  in
  List.iter (fun s -> ignore (Service.Supervisor.submit sup s)) service_matrix;
  Service.Wal.close wal;
  let listener = Symex.Transport.listen ~host:"127.0.0.1" ~port:0 () in
  let t0 = Unix.gettimeofday () in
  let code =
    Service.Daemon.run ~listener
      { (Service.Daemon.default_opts ~journal_dir:dir) with
        Service.Daemon.max_jobs = 1;
        exit_when_idle = true }
  in
  let wall = Unix.gettimeofday () -. t0 in
  Symex.Transport.close_listener listener;
  let journal_bytes =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun n -> Filename.check_suffix n ".log")
    |> List.fold_left
         (fun acc n ->
            acc + (Unix.stat (Filename.concat dir n)).Unix.st_size)
         0
  in
  (code, wall, journal_bytes)

let write_service_json path =
  let direct_dir = bench_temp_dir "direct" in
  let daemon_dir = bench_temp_dir "daemon" in
  Fun.protect
    ~finally:(fun () ->
      (try bench_rm_rf direct_dir with _ -> ());
      try bench_rm_rf daemon_dir with _ -> ())
    (fun () ->
       let direct_wall = service_direct_run direct_dir in
       let direct_verdicts = service_verdicts direct_dir in
       let code, daemon_wall, journal_bytes = service_daemon_run daemon_dir in
       let daemon_verdicts = service_verdicts daemon_dir in
       let buf = Buffer.create 1024 in
       Buffer.add_string buf "{\"schema\":\"symsysc-bench-service-v1\",";
       Printf.bprintf buf "\"jobs\":[";
       List.iteri
         (fun i spec ->
            if i > 0 then Buffer.add_char buf ',';
            Printf.bprintf buf "\"%s\""
              (Obs.Export.escape_json (Service.Jobspec.describe spec)))
         service_matrix;
       Printf.bprintf buf "],\"direct\":{\"wall_s\":%.3f,\"verdicts\":[%s]},"
         direct_wall
         (String.concat ","
            (List.map (Printf.sprintf "\"%s\"") direct_verdicts));
       Printf.bprintf buf
         "\"daemon\":{\"wall_s\":%.3f,\"exit_code\":%d,\"journal_bytes\":%d,\"verdicts\":[%s]},"
         daemon_wall code journal_bytes
         (String.concat ","
            (List.map (Printf.sprintf "\"%s\"") daemon_verdicts));
       Printf.bprintf buf
         "\"summary\":{\"same_verdicts\":%b,\"clean_exit\":%b,\"overhead_ratio\":%.3f}}\n"
         (direct_verdicts = daemon_verdicts
         && not (List.mem "missing" direct_verdicts))
         (code = 0)
         (if direct_wall > 0.0 then daemon_wall /. direct_wall else 0.0);
       Obs.Json.write_atomic path (Buffer.contents buf))

let () =
  Format.printf "=== SymSysC benchmark harness ===@.@.";
  Format.printf "-- Table 1 workload (per-test exploration, %d sources) --@."
    bench_sources;
  benchmark_group "table1" table1_tests;
  Format.printf "@.-- Table 2 workload (time to first fault detection) --@.";
  benchmark_group "table2" table2_tests;
  Format.printf "@.-- Ablation: PK vs heavyweight kernel (501 activations) --@.";
  benchmark_group "kernel" kernel_tests;
  Format.printf "@.-- Ablation: integer vs float simulation time (10k ops) --@.";
  benchmark_group "sc_time" time_tests;
  Format.printf "@.-- Ablation: solver caches (24 queries) --@.";
  benchmark_group "solver" solver_tests;
  Format.printf
    "@.-- Ablation: constraint-independence slicing (Table 1 workload) --@.";
  benchmark_group "independence" independence_tests;
  Format.printf
    "@.-- Ablation: incremental scope solving (Table 1 workload) --@.";
  benchmark_group "incremental" incremental_tests;
  Format.printf
    "@.-- Ablation: snapshot forking vs prefix replay (Table 1 workload) --@.";
  benchmark_group "snapshots" snapshot_tests;
  Format.printf "@.-- Ablation: first error vs exhaustive exploration (T1) --@.";
  benchmark_group "exploration" exploration_tests;
  Format.printf "@.-- Scaling: parallel workers (T1 exploration) --@.";
  benchmark_group "scaling" scaling_tests;
  Format.printf "@.-- Baseline: symbolic vs random testing (fault IF6) --@.";
  benchmark_group "baseline" baseline_tests;
  Format.printf "@.-- Second peripheral: CLINT timer property --@.";
  benchmark_group "clint" clint_tests;
  Format.printf "@.-- Resilience: checkpoint cost (T4 workload) --@.";
  benchmark_group "resilience" resilience_tests;
  write_bench_json "BENCH_1.json";
  Format.printf "@.(machine-readable results written to BENCH_1.json)@.";
  write_independence_json "BENCH_2.json";
  Format.printf "(independence on/off comparison written to BENCH_2.json)@.";
  write_incremental_json "BENCH_7.json";
  Format.printf "(incremental on/off comparison written to BENCH_7.json)@.";
  write_snapshots_json "BENCH_9.json";
  Format.printf "(snapshot vs replay comparison written to BENCH_9.json)@.";
  let scaling_rows = List.map scaling_campaign scaling_workers in
  write_scaling_json "BENCH_4.json" scaling_rows;
  Format.printf "(worker-scaling comparison written to BENCH_4.json)@.";
  let distributed_rows = List.map distributed_campaigns distributed_workers in
  write_distributed_json "BENCH_8.json" distributed_rows;
  Format.printf "(pipe vs loopback-TCP comparison written to BENCH_8.json)@.";
  write_service_json "BENCH_10.json";
  Format.printf "(campaign-service overhead written to BENCH_10.json)@.";
  Format.printf "@.worker scaling (Table 1 campaign, %d cores online):@."
    (online_cores ());
  Symsysc.Tables.print_scaling Format.std_formatter scaling_rows;

  (* ---- the actual table reproductions ---- *)
  let sources = getenv_int "SYMSYSC_SOURCES" (if smoke then 4 else 8) in
  let t5_len = getenv_int "SYMSYSC_T5_LEN" (if smoke then 8 else 16) in
  let scenario =
    Symsysc.Verify.scenario ~num_sources:sources ~t5_max_len:t5_len
      ~max_paths:
        (getenv_int "SYMSYSC_MAX_PATHS" (if smoke then 500 else 20_000))
      ()
  in
  Format.printf
    "@.=== Table 1: test results for the original PLIC (%d sources) ===@.@."
    sources;
  let reports = Symsysc.Verify.table1 scenario in
  Symsysc.Tables.print_table1 Format.std_formatter reports;
  Format.printf "@.where the solver time goes:@.";
  Symsysc.Tables.print_solver_breakdown Format.std_formatter reports;
  List.iter
    (fun (r : Symsysc.Report.t) ->
       List.iter
         (fun (e : Symex.Error.t) ->
            Format.printf "%s: %s (%s)@." r.Symsysc.Report.test_name
              e.Symex.Error.site
              (Symex.Error.kind_to_string e.Symex.Error.kind))
         r.Symsysc.Report.engine.Engine.errors)
    reports;
  Format.printf
    "@.=== Table 2: time until each bug/fault is found (%d sources) ===@.@."
    sources;
  let tests = List.map fst Symsysc.Tests.all in
  let detections = Symsysc.Verify.table2 ~tests scenario in
  Symsysc.Tables.print_table2 Format.std_formatter ~tests detections;
  Format.printf
    "@.(rows: tests; columns: original bugs F1-F6 and injected faults IF1-IF6)@."
