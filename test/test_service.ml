(* Campaign-service tests.

   The service's contract is "kill it anywhere, lose nothing": the
   write-ahead journal recovers from empty/torn/corrupt segments and
   from a SIGKILL mid-append or mid-rotation; the supervisor retries
   with backoff, quarantines poison jobs and re-queues in-flight work;
   and a daemon SIGKILLed mid-campaign, restarted on the same journal,
   finishes every job with reports equivalent to an uninterrupted
   run's (report-diff clean).  Plus the satellite regression: budget
   signal handlers chain instead of silently replacing what was
   installed before them. *)

module Json = Obs.Json
module Budget = Symex.Budget
module Transport = Symex.Transport
module Wal = Service.Wal
module Supervisor = Service.Supervisor
module Jobspec = Service.Jobspec
module Runner = Service.Runner
module Daemon = Service.Daemon
module Client = Service.Client

let temp_dir prefix =
  let path = Filename.temp_file prefix "" in
  Sys.remove path;
  Unix.mkdir path 0o755;
  path

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
    Unix.rmdir path
  end
  else Sys.remove path

let with_dir prefix f =
  let dir = temp_dir prefix in
  Fun.protect ~finally:(fun () -> try rm_rf dir with _ -> ()) (fun () -> f dir)

let record_fingerprint r = Json.to_string (Wal.record_to_json r)

let sample_records =
  [
    Wal.Submit (1, Jobspec.to_json Jobspec.default);
    Wal.Start (1, 1);
    Wal.Checkpoint_ref (1, "/tmp/job-1.ck");
    Wal.Fail (1, 1, "signal 9");
    Wal.Start (1, 2);
    Wal.Finish (1, "Pass", "/tmp/job-1-report.json");
    Wal.Submit (2, Jobspec.to_json { Jobspec.default with Jobspec.test = "T2" });
    Wal.Shed (2, 0.5);
    Wal.Cancel (2);
    Wal.Quarantine (3, 3);
  ]

(* ------------------------------------------------------------------ *)
(* WAL                                                                 *)

let test_wal_roundtrip () =
  with_dir "symsysc_wal" (fun dir ->
      let wal, recovered, dropped = Wal.open_dir dir in
      Alcotest.(check int) "fresh journal is empty" 0 (List.length recovered);
      Alcotest.(check int) "fresh journal drops nothing" 0 dropped;
      List.iter (Wal.append wal) sample_records;
      Wal.close wal;
      let wal2, recovered, dropped = Wal.open_dir dir in
      Wal.close wal2;
      Alcotest.(check int) "no bytes dropped" 0 dropped;
      Alcotest.(check (list string))
        "records replay in order"
        (List.map record_fingerprint sample_records)
        (List.map record_fingerprint recovered))

let test_wal_empty_journal () =
  with_dir "symsysc_wal" (fun dir ->
      (* Twice: open_dir must also accept a directory it just created,
         and an existing one holding an empty segment. *)
      let wal, r, d = Wal.open_dir dir in
      Wal.close wal;
      Alcotest.(check bool) "empty" true (r = [] && d = 0);
      let wal, r, d = Wal.open_dir dir in
      Wal.close wal;
      Alcotest.(check bool) "still empty" true (r = [] && d = 0))

let test_wal_torn_tail () =
  with_dir "symsysc_wal" (fun dir ->
      let wal, _, _ = Wal.open_dir dir in
      List.iter (Wal.append wal) sample_records;
      Wal.close wal;
      (* A crash mid-append: half of one frame at the end of the
         segment. *)
      let seg = Filename.concat dir "wal-000000.log" in
      let torn = Wal.frame (Wal.Cancel 9) in
      let oc = open_out_gen [ Open_append; Open_binary ] 0o644 seg in
      output_string oc (String.sub torn 0 (String.length torn / 2));
      close_out oc;
      let wal, recovered, dropped = Wal.open_dir dir in
      Wal.close wal;
      Alcotest.(check int) "torn bytes counted"
        (String.length torn / 2) dropped;
      Alcotest.(check (list string))
        "intact records survive"
        (List.map record_fingerprint sample_records)
        (List.map record_fingerprint recovered))

let test_wal_corrupt_crc_mid_segment () =
  with_dir "symsysc_wal" (fun dir ->
      let wal, _, _ = Wal.open_dir dir in
      List.iter (Wal.append wal) sample_records;
      Wal.close wal;
      let seg = Filename.concat dir "wal-000000.log" in
      let ic = open_in_bin seg in
      let contents = really_input_string ic (in_channel_length ic) in
      close_in ic;
      (* Flip one payload byte in the 4th line: its CRC no longer
         matches, so replay must stop there — nothing after a corrupt
         record can be trusted. *)
      let lines = String.split_on_char '\n' contents in
      let corrupted =
        List.mapi
          (fun i line ->
             if i = 3 then begin
               let b = Bytes.of_string line in
               let pos = String.length line - 3 in
               Bytes.set b pos
                 (if Bytes.get b pos = 'x' then 'y' else 'x');
               Bytes.to_string b
             end
             else line)
          lines
      in
      let oc = open_out_bin seg in
      output_string oc (String.concat "\n" corrupted);
      close_out oc;
      let wal, recovered, dropped = Wal.open_dir dir in
      Wal.close wal;
      Alcotest.(check (list string))
        "replay stops before the corrupt record"
        (List.map record_fingerprint
           [ List.nth sample_records 0; List.nth sample_records 1;
             List.nth sample_records 2 ])
        (List.map record_fingerprint recovered);
      Alcotest.(check bool) "corrupt tail counted" true (dropped > 0))

let test_wal_rotation () =
  with_dir "symsysc_wal" (fun dir ->
      let wal, _, _ = Wal.open_dir ~segment_bytes:256 dir in
      List.iter (Wal.append wal) sample_records;
      Alcotest.(check bool) "due for rotation" true (Wal.needs_rotation wal);
      let snapshot = Json.Obj [ ("state", Json.Str "compacted") ] in
      Wal.rotate wal ~snapshot;
      Alcotest.(check int) "segment advanced" 1 (Wal.segment_index wal);
      Wal.append wal (Wal.Cancel 7);
      Wal.close wal;
      Alcotest.(check bool) "old segment unlinked" false
        (Sys.file_exists (Filename.concat dir "wal-000000.log"));
      let wal, recovered, dropped = Wal.open_dir dir in
      Wal.close wal;
      Alcotest.(check int) "clean replay" 0 dropped;
      Alcotest.(check (list string))
        "snapshot supersedes older records"
        (List.map record_fingerprint
           [ Wal.Snapshot snapshot; Wal.Cancel 7 ])
        (List.map record_fingerprint recovered))

let test_wal_interrupted_rotation () =
  (* A rotation can die at two interesting instants; both on-disk
     states must recover.  (1) before the new segment's rename: the
     journal is untouched, a stale .tmp lies around.  (2) after the
     rename but before old segments are unlinked: the snapshot
     supersedes the old segment's records on replay. *)
  with_dir "symsysc_wal" (fun dir ->
      let wal, _, _ = Wal.open_dir dir in
      List.iter (Wal.append wal) sample_records;
      Wal.close wal;
      (* state 1 *)
      let tmp = Filename.concat dir "wal-000001.log.tmp" in
      let oc = open_out_bin tmp in
      output_string oc "half a snapshot fra";
      close_out oc;
      let wal, recovered, dropped = Wal.open_dir dir in
      Wal.close wal;
      Alcotest.(check bool) "stale tmp removed" false (Sys.file_exists tmp);
      Alcotest.(check int) "old journal intact" 0 dropped;
      Alcotest.(check int) "all records replay"
        (List.length sample_records) (List.length recovered);
      (* state 2 *)
      let snapshot = Json.Obj [ ("jobs", Json.List []) ] in
      let oc =
        open_out_bin (Filename.concat dir "wal-000001.log")
      in
      output_string oc (Wal.frame (Wal.Snapshot snapshot));
      close_out oc;
      let wal, recovered, _ = Wal.open_dir dir in
      Wal.close wal;
      Alcotest.(check (list string))
        "snapshot segment wins"
        [ record_fingerprint (Wal.Snapshot snapshot) ]
        (List.map record_fingerprint recovered))

let test_wal_chaos_truncate_sigkill () =
  (* The journal-truncate chaos point for real: the appending process
     writes half a frame and dies by SIGKILL.  Recovery keeps every
     earlier record and drops the torn tail. *)
  with_dir "symsysc_wal" (fun dir ->
      flush stdout;
      flush stderr;
      (match Unix.fork () with
       | 0 ->
         (try
            let wal, _, _ = Wal.open_dir dir in
            Wal.append wal (Wal.Submit (1, Jobspec.to_json Jobspec.default));
            Wal.append wal (Wal.Start (1, 1));
            Chaos.configure ~seed:3
              (match Chaos.parse_spec "journal-truncate:1" with
               | Ok s -> s
               | Error m -> failwith m);
            Wal.append wal (Wal.Finish (1, "Pass", "r.json"));
            (* unreachable: the append above kills the process *)
            Unix._exit 7
          with _ -> Unix._exit 8)
       | pid ->
         let _, status = Unix.waitpid [] pid in
         Alcotest.(check bool) "child died by SIGKILL" true
           (status = Unix.WSIGNALED Sys.sigkill));
      let wal, recovered, dropped = Wal.open_dir dir in
      Wal.close wal;
      Alcotest.(check bool) "torn tail dropped" true (dropped > 0);
      Alcotest.(check (list string))
        "records before the crash survive"
        (List.map record_fingerprint
           [ Wal.Submit (1, Jobspec.to_json Jobspec.default);
             Wal.Start (1, 1) ])
        (List.map record_fingerprint recovered))

(* ------------------------------------------------------------------ *)
(* Supervisor                                                          *)

let open_supervisor ?(job_retries = 2) dir =
  let wal, records, _ = Wal.open_dir dir in
  (wal, Supervisor.create ~wal ~job_retries ~backoff_seed:5 records)

let test_supervisor_retry_quarantine () =
  with_dir "symsysc_sup" (fun dir ->
      let wal, sup = open_supervisor ~job_retries:2 dir in
      let j = Supervisor.submit sup Jobspec.default in
      Supervisor.note_start sup j;
      Supervisor.note_fail sup j ~reason:"signal 9";
      Alcotest.(check bool) "re-queued after first failure" true
        (j.Supervisor.state = Supervisor.Queued);
      Alcotest.(check bool) "backoff gate armed" true
        (j.Supervisor.not_before > 0.0);
      Alcotest.(check bool) "gate respects the clock" true
        (Supervisor.next_runnable sup ~now:0.0 = None);
      Alcotest.(check bool) "gate opens later" true
        (Supervisor.next_runnable sup
           ~now:(j.Supervisor.not_before +. 1.0)
         <> None);
      Supervisor.note_start sup j;
      Supervisor.note_fail sup j ~reason:"signal 9";
      Supervisor.note_start sup j;
      Supervisor.note_fail sup j ~reason:"signal 9";
      Alcotest.(check bool) "third failure quarantines" true
        (j.Supervisor.state = Supervisor.Quarantined);
      Alcotest.(check int) "attempts surfaced" 3 j.Supervisor.attempts;
      Alcotest.(check int) "quarantine counted" 1
        (List.assoc "quarantined" (Supervisor.counts sup));
      Alcotest.(check int) "retries counted" 2
        (List.assoc "retried" (Supervisor.counts sup));
      Alcotest.(check bool) "terminal" true (Supervisor.all_terminal sup);
      Wal.close wal;
      (* The whole story must replay identically. *)
      let wal, sup2 = open_supervisor ~job_retries:2 dir in
      Wal.close wal;
      (match Supervisor.job sup2 1 with
       | Some j2 ->
         Alcotest.(check bool) "quarantine replays" true
           (j2.Supervisor.state = Supervisor.Quarantined);
         Alcotest.(check int) "attempts replay" 3 j2.Supervisor.attempts
       | None -> Alcotest.fail "job lost on replay"))

let test_supervisor_crash_recovery () =
  with_dir "symsysc_sup" (fun dir ->
      let wal, sup = open_supervisor dir in
      let j1 = Supervisor.submit sup Jobspec.default in
      let j2 =
        Supervisor.submit sup { Jobspec.default with Jobspec.test = "T2" }
      in
      Supervisor.note_start sup j1;
      Supervisor.note_checkpoint sup j1 "/tmp/job-1.ck";
      Supervisor.note_finish sup j2 ~verdict:"Pass" ~report:"r2.json";
      Wal.close wal;
      (* The daemon dies here.  Replay: the in-flight job is re-queued
         with its checkpoint ref intact; the finished one stays
         finished. *)
      let wal, sup2 = open_supervisor dir in
      Wal.close wal;
      (match Supervisor.job sup2 j1.Supervisor.id with
       | Some j ->
         Alcotest.(check bool) "in-flight job re-queued" true
           (j.Supervisor.state = Supervisor.Queued);
         Alcotest.(check (option string))
           "checkpoint ref survives" (Some "/tmp/job-1.ck")
           j.Supervisor.checkpoint
       | None -> Alcotest.fail "job 1 lost");
      match Supervisor.job sup2 j2.Supervisor.id with
      | Some j ->
        Alcotest.(check bool) "finished job stays finished" true
          (j.Supervisor.state = Supervisor.Finished);
        Alcotest.(check (option string)) "verdict survives" (Some "Pass")
          j.Supervisor.verdict
      | None -> Alcotest.fail "job 2 lost")

let test_supervisor_shed_and_snapshot () =
  with_dir "symsysc_sup" (fun dir ->
      let wal, sup = open_supervisor dir in
      let j = Supervisor.submit sup Jobspec.default in
      Supervisor.note_start sup j;
      Supervisor.note_shed sup j;
      Alcotest.(check bool) "shed re-queues" true
        (j.Supervisor.state = Supervisor.Queued);
      Alcotest.(check (float 1e-9)) "budget halved" 0.5
        j.Supervisor.budget_scale;
      Supervisor.note_start sup j;
      Supervisor.note_shed sup j;
      Alcotest.(check (float 1e-9)) "budget halves again" 0.25
        j.Supervisor.budget_scale;
      (* Snapshot/rotate, then replay only the new segment. *)
      Wal.rotate wal ~snapshot:(Supervisor.snapshot sup);
      Wal.close wal;
      let wal, sup2 = open_supervisor dir in
      Wal.close wal;
      match Supervisor.job sup2 j.Supervisor.id with
      | Some j2 ->
        Alcotest.(check (float 1e-9)) "scale survives compaction" 0.25
          j2.Supervisor.budget_scale;
        Alcotest.(check int) "sheds survive compaction" 2 j2.Supervisor.sheds;
        Alcotest.(check int) "shed total survives" 2
          (List.assoc "shed" (Supervisor.counts sup2))
      | None -> Alcotest.fail "job lost across rotation")

(* ------------------------------------------------------------------ *)
(* Budget signal-handler chaining (satellite regression)               *)

let test_signal_handler_chaining () =
  let hits = ref 0 in
  let prev =
    Sys.signal Sys.sigterm (Sys.Signal_handle (fun _ -> incr hits))
  in
  Fun.protect
    ~finally:(fun () ->
      Sys.set_signal Sys.sigterm prev;
      Budget.clear_interrupt ())
    (fun () ->
       Budget.install_signal_handlers ();
       (* The old bug: a second install was silently skipped by a
          [handlers_installed] latch — after any code replaced the
          handler in between, budget stops went dead.  Now installs
          chain; a double install must not chain the handler to
          itself (that would loop forever on the first signal). *)
       Budget.install_signal_handlers ();
       Budget.clear_interrupt ();
       Unix.kill (Unix.getpid ()) Sys.sigterm;
       (* Signal delivery happens at a safe point; give it one. *)
       let deadline = Unix.gettimeofday () +. 5.0 in
       while (not (Budget.interrupted ())) && Unix.gettimeofday () < deadline do
         ignore (Sys.opaque_identity (ref 0));
         Unix.sleepf 0.001
       done;
       Alcotest.(check bool) "interrupt flag set" true (Budget.interrupted ());
       Alcotest.(check int) "previous handler chained exactly once" 1 !hits)

(* ------------------------------------------------------------------ *)
(* Runner: interrupt -> checkpoint -> resume equivalence               *)

let t3_spec =
  {
    Jobspec.default with
    Jobspec.test = "T3";
    num_sources = 3;
    seed = Some 11;
  }

let run_runner_child ~dir ~id ~attempt spec =
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
    let code =
      try
        Runner.exec ~journal_dir:dir ~checkpoint_every_s:0.05 ~id ~attempt
          ~budget_scale:1.0 spec
      with _ -> 9
    in
    Unix._exit code
  | pid -> pid

let wait_exit pid =
  match Unix.waitpid [] pid with
  | _, Unix.WEXITED n -> `Exit n
  | _, Unix.WSIGNALED s -> `Signal s
  | _, Unix.WSTOPPED _ -> `Stopped

let load_report path =
  match Json.load path with
  | Ok j -> j
  | Error msg -> Alcotest.fail (path ^ ": " ^ msg)

let test_runner_resume_equivalence () =
  with_dir "symsysc_ref" (fun ref_dir ->
      with_dir "symsysc_resume" (fun dir ->
          (* Reference: one uninterrupted execution. *)
          let pid = run_runner_child ~dir:ref_dir ~id:1 ~attempt:1 t3_spec in
          Alcotest.(check bool) "reference run finishes" true
            (wait_exit pid = `Exit 0);
          (* Interrupted: SIGTERM mid-run -> exit 3 + checkpoint; then
             a second attempt resumes and finishes. *)
          let pid = run_runner_child ~dir ~id:1 ~attempt:1 t3_spec in
          Unix.sleepf 0.4;
          (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
          (match wait_exit pid with
           | `Exit 3 ->
             Alcotest.(check bool) "drain left a checkpoint" true
               (Sys.file_exists (Runner.checkpoint_path ~journal_dir:dir 1))
           | `Exit 0 ->
             (* The run beat the SIGTERM — equivalence still checked. *)
             ()
           | r ->
             Alcotest.failf "interrupted run: unexpected %s"
               (match r with
                | `Exit n -> Printf.sprintf "exit %d" n
                | `Signal s -> Printf.sprintf "signal %d" s
                | `Stopped -> "stop"));
          let pid = run_runner_child ~dir ~id:1 ~attempt:2 t3_spec in
          Alcotest.(check bool) "resumed run finishes" true
            (wait_exit pid = `Exit 0);
          let diffs =
            Symsysc.Diff.compare_reports
              (load_report (Runner.report_path ~journal_dir:ref_dir 1))
              (load_report (Runner.report_path ~journal_dir:dir 1))
          in
          if diffs <> [] then
            Alcotest.failf "resumed report differs: %s"
              (Format.asprintf "%a" Symsysc.Diff.pp diffs)))

(* ------------------------------------------------------------------ *)
(* Daemon end-to-end                                                   *)

let spawn_daemon ?chaos_spec ?(opts_f = fun o -> o) dir =
  let listener = Transport.listen ~host:"127.0.0.1" ~port:0 () in
  let _, port = Transport.listener_addr listener in
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
    let code =
      try
        (match chaos_spec with
         | Some (spec, seed) ->
           Chaos.configure ~seed
             (match Chaos.parse_spec spec with
              | Ok s -> s
              | Error m -> failwith m)
         | None -> Chaos.disable ());
        Daemon.run ~listener (opts_f (Daemon.default_opts ~journal_dir:dir))
      with _ -> 9
    in
    Unix._exit code
  | pid ->
    Transport.close_listener listener;
    (pid, port)

let rec wait_for_daemon ~port attempts =
  match Client.ping ~host:"127.0.0.1" ~port with
  | Ok _ -> ()
  | Error _ when attempts > 0 ->
    Unix.sleepf 0.05;
    wait_for_daemon ~port (attempts - 1)
  | Error msg -> Alcotest.fail ("daemon never came up: " ^ msg)

let submit_ok ~port spec =
  match Client.submit ~host:"127.0.0.1" ~port spec with
  | Ok id -> id
  | Error msg -> Alcotest.fail ("submit: " ^ msg)

let matrix =
  [
    { Jobspec.default with Jobspec.test = "T1"; num_sources = 2 };
    { Jobspec.default with Jobspec.peripheral = "uart"; test = "loopback" };
    {
      Jobspec.default with
      Jobspec.peripheral = "clint";
      test = "timer";
      mode = Jobspec.Random;
      trials = 64;
      seed = Some 7;
    };
  ]

let offline_counts dir =
  let wal, records, _ = Wal.open_dir dir in
  let sup = Supervisor.create ~wal ~job_retries:0 ~backoff_seed:0 records in
  Wal.close wal;
  (Supervisor.counts sup, Supervisor.jobs sup)

let test_daemon_kill_restart_equivalence () =
  with_dir "symsysc_dref" (fun ref_dir ->
      with_dir "symsysc_dkill" (fun dir ->
          (* Reference campaign, uninterrupted. *)
          let pid, port =
            spawn_daemon ref_dir ~opts_f:(fun o ->
                { o with Daemon.exit_when_idle = true })
          in
          wait_for_daemon ~port 100;
          List.iter (fun s -> ignore (submit_ok ~port s)) matrix;
          Alcotest.(check bool) "reference daemon exits clean" true
            (wait_exit pid = `Exit 0);
          (* Same campaign, SIGKILLed mid-flight, restarted on the same
             journal. *)
          let pid, port =
            spawn_daemon dir ~opts_f:(fun o ->
                { o with Daemon.exit_when_idle = true })
          in
          wait_for_daemon ~port 100;
          List.iter (fun s -> ignore (submit_ok ~port s)) matrix;
          Unix.sleepf 0.6;
          (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
          ignore (wait_exit pid);
          let pid, port =
            spawn_daemon dir ~opts_f:(fun o ->
                { o with Daemon.exit_when_idle = true })
          in
          wait_for_daemon ~port 100;
          Alcotest.(check bool) "restarted daemon finishes the campaign"
            true
            (wait_exit pid = `Exit 0);
          let counts, jobs = offline_counts dir in
          Alcotest.(check int) "every job finished" (List.length matrix)
            (List.assoc "finished" counts);
          ignore jobs;
          (* Per-job report equivalence against the reference run. *)
          List.iteri
            (fun i (spec : Jobspec.t) ->
               let id = i + 1 in
               let a = load_report (Runner.report_path ~journal_dir:ref_dir id) in
               let b = load_report (Runner.report_path ~journal_dir:dir id) in
               match spec.Jobspec.mode with
               | Jobspec.Random ->
                 (* Random reports carry only deterministic fields —
                    exact equality. *)
                 Alcotest.(check string)
                   (Printf.sprintf "job %d random report equal" id)
                   (Json.to_string a) (Json.to_string b)
               | Jobspec.Symbolic ->
                 let diffs = Symsysc.Diff.compare_reports a b in
                 if diffs <> [] then
                   Alcotest.failf "job %d report differs: %s" id
                     (Format.asprintf "%a" Symsysc.Diff.pp diffs))
            matrix))

let test_daemon_drain () =
  with_dir "symsysc_drain" (fun dir ->
      let pid, port = spawn_daemon dir in
      wait_for_daemon ~port 100;
      let _ = submit_ok ~port t3_spec in
      Unix.sleepf 0.4;
      (match Client.drain ~host:"127.0.0.1" ~port with
       | Ok () -> ()
       | Error msg -> Alcotest.fail ("drain: " ^ msg));
      Alcotest.(check bool) "drained daemon exits 0" true
        (wait_exit pid = `Exit 0);
      (* The journal must be consistent and the job either finished
         (drain raced its completion) or re-queued for the next
         daemon. *)
      let counts, jobs = offline_counts dir in
      Alcotest.(check int) "nothing lost" 1 (List.length jobs);
      let finished = List.assoc "finished" counts in
      let queued = List.assoc "queued" counts in
      Alcotest.(check int) "finished or re-queued" 1 (finished + queued);
      (* Restart finishes the campaign with an equivalent report. *)
      let pid, port =
        spawn_daemon dir ~opts_f:(fun o ->
            { o with Daemon.exit_when_idle = true })
      in
      wait_for_daemon ~port 100;
      Alcotest.(check bool) "restart finishes" true (wait_exit pid = `Exit 0);
      with_dir "symsysc_drain_ref" (fun ref_dir ->
          let rpid = run_runner_child ~dir:ref_dir ~id:1 ~attempt:1 t3_spec in
          Alcotest.(check bool) "reference finishes" true
            (wait_exit rpid = `Exit 0);
          let diffs =
            Symsysc.Diff.compare_reports
              (load_report (Runner.report_path ~journal_dir:ref_dir 1))
              (load_report (Runner.report_path ~journal_dir:dir 1))
          in
          if diffs <> [] then
            Alcotest.failf "post-drain report differs: %s"
              (Format.asprintf "%a" Symsysc.Diff.pp diffs)))

let test_daemon_quarantines_crashing_job () =
  with_dir "symsysc_poison" (fun dir ->
      (* job-crash:1 kills every job process at startup: the daemon
         must retry (backoff), give up after the configured attempts,
         quarantine — and still exit idle cleanly, surfacing the
         counts. *)
      let pid, port =
        spawn_daemon dir
          ~chaos_spec:("job-crash:1", 13)
          ~opts_f:(fun o ->
            { o with Daemon.exit_when_idle = true; job_retries = 1 })
      in
      wait_for_daemon ~port 100;
      let _ =
        submit_ok ~port
          { Jobspec.default with Jobspec.peripheral = "uart"; test = "loopback" }
      in
      Alcotest.(check bool) "daemon exits despite poison job" true
        (wait_exit pid = `Exit 0);
      let counts, jobs = offline_counts dir in
      Alcotest.(check int) "job quarantined" 1
        (List.assoc "quarantined" counts);
      Alcotest.(check int) "retry counted" 1 (List.assoc "retried" counts);
      match jobs with
      | [ j ] ->
        Alcotest.(check int) "attempts surfaced" 2 j.Supervisor.attempts
      | _ -> Alcotest.fail "expected exactly one job")

let test_daemon_sheds_under_pressure () =
  with_dir "symsysc_shed" (fun dir ->
      (* In-process daemon with injected pressure.  The window opens
         only after both jobs have been admitted (pressure at tick one
         would just pause admission — the ladder's first step) and
         closes a second later so the shed job can be re-admitted and
         the campaign can finish.  exit_when_idle returns control to
         the test. *)
      let listener = Transport.listen ~host:"127.0.0.1" ~port:0 () in
      let started = Unix.gettimeofday () in
      let pressure () =
        let t = Unix.gettimeofday () -. started in
        if t > 0.1 && t < 1.1 then 10_000.0 else 0.0
      in
      (* Pre-load the queue offline so both jobs are admitted at tick
         one; T5 is the slow sequence test, so both are still running
         when the pressure window opens. *)
      let slow = { t3_spec with Jobspec.test = "T5"; t5_len = 8 } in
      let wal, records, _ = Wal.open_dir dir in
      let sup = Supervisor.create ~wal ~job_retries:2 ~backoff_seed:0 records in
      ignore (Supervisor.submit sup slow);
      ignore (Supervisor.submit sup { slow with Jobspec.seed = Some 23 });
      Wal.close wal;
      let code =
        Daemon.run ~pressure_mb:pressure ~listener
          { (Daemon.default_opts ~journal_dir:dir) with
            Daemon.exit_when_idle = true;
            mem_watermark_mb = Some 100.0 }
      in
      Transport.close_listener listener;
      Alcotest.(check int) "campaign completes" 0 code;
      let counts, jobs = offline_counts dir in
      Alcotest.(check int) "both jobs finished" 2
        (List.assoc "finished" counts);
      Alcotest.(check bool) "at least one shed surfaced" true
        (List.assoc "shed" counts >= 1);
      Alcotest.(check bool) "a job ran on a halved budget" true
        (List.exists
           (fun (j : Supervisor.job) -> j.Supervisor.budget_scale < 1.0)
           jobs))

let suite =
  [
    Alcotest.test_case "wal: round-trip" `Quick test_wal_roundtrip;
    Alcotest.test_case "wal: empty journal" `Quick test_wal_empty_journal;
    Alcotest.test_case "wal: torn tail dropped" `Quick test_wal_torn_tail;
    Alcotest.test_case "wal: corrupt CRC stops replay" `Quick
      test_wal_corrupt_crc_mid_segment;
    Alcotest.test_case "wal: rotation compacts" `Quick test_wal_rotation;
    Alcotest.test_case "wal: interrupted rotation recovers" `Quick
      test_wal_interrupted_rotation;
    Alcotest.test_case "wal: SIGKILL mid-append (chaos)" `Quick
      test_wal_chaos_truncate_sigkill;
    Alcotest.test_case "supervisor: retry, backoff, quarantine" `Quick
      test_supervisor_retry_quarantine;
    Alcotest.test_case "supervisor: crash recovery re-queues" `Quick
      test_supervisor_crash_recovery;
    Alcotest.test_case "supervisor: shed + snapshot compaction" `Quick
      test_supervisor_shed_and_snapshot;
    Alcotest.test_case "budget: signal handlers chain" `Quick
      test_signal_handler_chaining;
    Alcotest.test_case "runner: interrupt/resume equivalence" `Slow
      test_runner_resume_equivalence;
    Alcotest.test_case "daemon: SIGKILL + restart equivalence" `Slow
      test_daemon_kill_restart_equivalence;
    Alcotest.test_case "daemon: SIGTERM drain + restart" `Slow
      test_daemon_drain;
    Alcotest.test_case "daemon: poison job quarantined" `Slow
      test_daemon_quarantines_crashing_job;
    Alcotest.test_case "daemon: sheds under memory pressure" `Slow
      test_daemon_sheds_under_pressure;
  ]
