(* Resilience tests: checkpoint/resume equivalence across every search
   strategy and testbench, mid-path interruption, and the Section 5.3
   fault-injection campaign as a pinned detection matrix.

   The equivalence property under test is the one DESIGN.md promises:
   an exploration that is interrupted by a budget, checkpointed and
   resumed reaches exactly the same verdict, path totals, instruction
   count and bug sites as one that ran straight through. *)

module Engine = Symex.Engine
module Search = Symex.Search
module Error = Symex.Error
module Verify = Symsysc.Verify
module Report = Symsysc.Report

let scenario ?strategy () =
  Verify.scenario ~num_sources:4 ~t5_max_len:8 ?strategy ()

let strategies =
  [ ("dfs", Search.Dfs);
    ("bfs", Search.Bfs);
    ("random", Search.Random_path 42);
    ("cover-new", Search.Cover_new) ]

let tests = [ "t1"; "t2"; "t3"; "t4"; "t5" ]

(* The deterministic fields two equivalent runs must agree on. *)
let fingerprint (r : Report.t) =
  let e = r.Report.engine in
  ( r.Report.verdict,
    e.Engine.paths,
    e.Engine.paths_completed,
    e.Engine.paths_errored,
    e.Engine.paths_infeasible,
    e.Engine.paths_unknown,
    e.Engine.instructions,
    List.sort compare
      (List.map
         (fun (err : Error.t) ->
            (err.Error.site, Error.kind_to_string err.Error.kind))
         e.Engine.errors) )

let with_session sc f =
  { sc with Verify.session = f sc.Verify.session }

let with_limits sc limits =
  with_session sc (fun s -> { s with Engine.Session.limits })

(* Run [name] straight through, then again truncated by [cut] (which
   edits the limits), capture the final checkpoint, resume without the
   truncation and require identical fingerprints. *)
let check_resume_equiv ~cut strategy name () =
  let sc = scenario ~strategy () in
  let straight = Verify.run_test sc name in
  let saved = ref None in
  let policy =
    { Engine.write = (fun ck -> saved := Some ck); every_s = infinity }
  in
  let truncated =
    Verify.run_test
      (with_session
         (with_limits sc (cut sc.Verify.session.Engine.Session.limits))
         (fun s -> { s with Engine.Session.checkpoint = Some policy }))
      name
  in
  match !saved with
  | None -> Alcotest.fail "no checkpoint written"
  | Some ck ->
    (* The truncated run must not claim exhaustive coverage unless it
       genuinely finished before the budget fired. *)
    if truncated.Report.engine.Engine.stop_reason <> None then
      Alcotest.(check bool) "truncated run not exhausted" false
        truncated.Report.engine.Engine.exhausted;
    let resumed =
      Verify.run_test
        (with_session sc (fun s -> { s with Engine.Session.resume = Some ck }))
        name
    in
    Alcotest.(check bool) "resumed run exhausted" true
      resumed.Report.engine.Engine.exhausted;
    Alcotest.(check bool)
      "resumed fingerprint equals straight-through" true
      (fingerprint resumed = fingerprint straight)

(* Interrupt between paths: a small path budget. *)
let cut_paths limits = { limits with Engine.max_paths = Some 3 }

(* Interrupt in the middle of a path: an instruction budget that fires
   partway through an execution, forcing the engine to abandon and
   requeue the in-flight path. *)
let cut_instructions limits =
  { limits with Engine.max_instructions = Some 50 }

let resume_cases =
  List.concat_map
    (fun (sname, strategy) ->
       List.map
         (fun name ->
            ( Printf.sprintf "resume equivalence: %s/%s" sname name,
              `Slow,
              check_resume_equiv ~cut:cut_paths strategy name ))
         tests)
    strategies

let midpath_cases =
  List.map
    (fun (sname, strategy) ->
       ( Printf.sprintf "mid-path resume equivalence: %s/t4" sname,
         `Slow,
         check_resume_equiv ~cut:cut_instructions strategy "t4" ))
    strategies

(* A resumed run must also refuse a checkpoint from a different test. *)
let test_resume_label_mismatch () =
  let sc = scenario () in
  let saved = ref None in
  let policy =
    { Engine.write = (fun ck -> saved := Some ck); every_s = infinity }
  in
  ignore
    (Verify.run_test
       (with_session
          (with_limits sc (cut_paths sc.Verify.session.Engine.Session.limits))
          (fun s -> { s with Engine.Session.checkpoint = Some policy }))
       "t1");
  match !saved with
  | None -> Alcotest.fail "no checkpoint written"
  | Some ck ->
    (match
       Verify.run_test
         (with_session sc
            (fun s -> { s with Engine.Session.resume = Some ck }))
         "t2"
     with
     | _ -> Alcotest.fail "resuming t1's checkpoint as t2 should fail"
     | exception _ -> ())

(* ------------------------------------------------------------------ *)
(* Fault-injection detection matrix (Section 5.3)                      *)

(* Pinned at scenario ~num_sources:4 ~t5_max_len:8; first_path is the
   path index of the first detecting execution — a deterministic
   latency measure.  Regenerate with Verify.detection_matrix if the
   testbenches or the scaled scenario change. *)
let golden_matrix =
  [ ("IF1",
     [ ("T1", true, Some 0); ("T2", false, None); ("T3", false, None);
       ("T4", false, None); ("T5", false, None) ]);
    ("IF2",
     [ ("T1", true, Some 1); ("T2", true, Some 0); ("T3", false, None);
       ("T4", false, None); ("T5", false, None) ]);
    ("IF3",
     [ ("T1", false, None); ("T2", true, Some 0); ("T3", false, None);
       ("T4", false, None); ("T5", false, None) ]);
    ("IF4",
     [ ("T1", true, Some 1); ("T2", false, None); ("T3", false, None);
       ("T4", false, None); ("T5", false, None) ]);
    ("IF5",
     [ ("T1", true, Some 1); ("T2", true, Some 0); ("T3", false, None);
       ("T4", false, None); ("T5", false, None) ]);
    ("IF6",
     [ ("T1", false, None); ("T2", false, None); ("T3", true, Some 0);
       ("T4", false, None); ("T5", false, None) ]) ]

let test_detection_matrix () =
  let matrix = Verify.detection_matrix (scenario ()) in
  let got =
    List.map
      (fun (fault, cells) ->
         ( Plic.Fault.to_string fault,
           List.map
             (fun (test, (c : Verify.matrix_cell)) ->
                (test, c.Verify.detected, c.Verify.first_path))
             cells ))
      matrix
  in
  (* Every injected fault must be caught by at least one test — the
     paper's qualitative claim for the campaign. *)
  List.iter
    (fun (fault, cells) ->
       Alcotest.(check bool) (fault ^ " detected by some test") true
         (List.exists (fun (_, detected, _) -> detected) cells))
    got;
  (* And the full matrix, including path-count latency, is stable. *)
  List.iter2
    (fun (efault, erow) (gfault, grow) ->
       Alcotest.(check string) "fault order" efault gfault;
       List.iter2
         (fun (etest, edet, epath) (gtest, gdet, gpath) ->
            Alcotest.(check string) (efault ^ " column") etest gtest;
            Alcotest.(check bool)
              (Printf.sprintf "%s/%s detected" efault etest) edet gdet;
            Alcotest.(check (option int))
              (Printf.sprintf "%s/%s first path" efault etest) epath gpath)
         erow grow)
    golden_matrix got

let suite =
  resume_cases @ midpath_cases
  @ [
      ("resume: label mismatch rejected", `Quick, test_resume_label_mismatch);
      ("fault campaign: detection matrix", `Slow, test_detection_matrix);
    ]
