(* Tests for the TLM layer: payload, register-file dispatch under both
   policies, router and global quantum. *)

module Expr = Smt.Expr
module Bv = Smt.Bv
module Value = Symex.Value
module Engine = Symex.Engine
module Mem = Symex.Mem
module Payload = Tlm.Payload
module Register = Tlm.Register
module Router = Tlm.Router
module Sc_time = Pk.Sc_time

let e_int v = Expr.int ~width:32 v

(* ------------------------------------------------------------------ *)
(* Payload                                                             *)

let test_payload_write32_layout () =
  let p = Payload.make_write32 ~addr:(e_int 0) ~value:(e_int 0x11223344) in
  let byte i =
    match Expr.to_bv p.Payload.data.(i) with
    | Some v -> Bv.to_int64 v
    | None -> Alcotest.fail "expected concrete byte"
  in
  Alcotest.(check int64) "LSB first" 0x44L (byte 0);
  Alcotest.(check int64) "MSB last" 0x11L (byte 3)

let test_payload_data32_roundtrip () =
  let p = Payload.make_write32 ~addr:(e_int 0) ~value:(e_int 0xCAFE1234) in
  match Expr.to_bv (Payload.data32 p) with
  | Some v -> Alcotest.(check int64) "roundtrip" 0xCAFE1234L (Bv.to_int64 v)
  | None -> Alcotest.fail "expected concrete"

let test_payload_data32_short () =
  let p = Payload.make_read ~addr:(e_int 0) ~len:(e_int 4) in
  Alcotest.check_raises "short buffer"
    (Invalid_argument "Payload.data32: fewer than 4 bytes") (fun () ->
        ignore (Payload.data32 p))

(* ------------------------------------------------------------------ *)
(* Register file                                                       *)

let make_regfile policy =
  let rf = Register.create ~policy ~name:"dev" () in
  let ctrl = Mem.create ~name:"ctrl" ~size:8 in
  let status = Mem.create ~name:"status" ~size:4 in
  let cmd = Mem.create ~name:"cmd" ~size:4 in
  ignore (Register.add_range rf ~name:"ctrl" ~base:0x0
            ~access:Register.Read_write ctrl);
  ignore (Register.add_range rf ~name:"status" ~base:0x10
            ~access:Register.Read_only status);
  ignore (Register.add_range rf ~name:"cmd" ~base:0x20
            ~access:Register.Write_only cmd);
  (rf, ctrl, status, cmd)

let do_read rf ~addr ~len =
  let p = Payload.make_read ~addr:(e_int addr) ~len:(e_int len) in
  ignore (Register.transport rf p Sc_time.zero);
  p

let do_write32 rf ~addr ~value =
  let p = Payload.make_write32 ~addr:(e_int addr) ~value:(e_int value) in
  ignore (Register.transport rf p Sc_time.zero);
  p

let test_regfile_concrete_rw () =
  let rf, ctrl, _, _ = make_regfile Register.Fixed in
  let p = do_write32 rf ~addr:0x4 ~value:0xAB54 in
  Alcotest.(check bool) "write ok" true (Payload.is_ok p);
  (match Expr.to_bv (Mem.read32 ctrl 4) with
   | Some v -> Alcotest.(check int64) "stored" 0xAB54L (Bv.to_int64 v)
   | None -> Alcotest.fail "expected concrete");
  let p = do_read rf ~addr:0x4 ~len:4 in
  Alcotest.(check bool) "read ok" true (Payload.is_ok p);
  match Expr.to_bv (Payload.data32 p) with
  | Some v -> Alcotest.(check int64) "read back" 0xAB54L (Bv.to_int64 v)
  | None -> Alcotest.fail "expected concrete"

let test_regfile_fixed_misaligned () =
  let rf, _, _, _ = make_regfile Register.Fixed in
  let p = do_read rf ~addr:0x2 ~len:4 in
  Alcotest.(check bool) "address error" true
    (p.Payload.response = Payload.Address_error)

let test_regfile_fixed_unmapped () =
  let rf, _, _, _ = make_regfile Register.Fixed in
  let p = do_read rf ~addr:0x100 ~len:4 in
  Alcotest.(check bool) "address error" true
    (p.Payload.response = Payload.Address_error)

let test_regfile_fixed_access_type () =
  let rf, _, _, _ = make_regfile Register.Fixed in
  let p = do_write32 rf ~addr:0x10 ~value:1 in
  Alcotest.(check bool) "RO write rejected" true
    (p.Payload.response = Payload.Command_error);
  let p = do_read rf ~addr:0x20 ~len:4 in
  Alcotest.(check bool) "WO read rejected" true
    (p.Payload.response = Payload.Command_error)

let test_regfile_fixed_burst () =
  let rf, _, _, _ = make_regfile Register.Fixed in
  (* 8-byte read starting inside the 4-byte status register *)
  let p = do_read rf ~addr:0x10 ~len:8 in
  Alcotest.(check bool) "burst error" true
    (p.Payload.response = Payload.Burst_error)

(* Original policy: asserts abort instead of error responses (in
   concrete mode they raise Check_failed). *)
let test_regfile_original_asserts () =
  let rf, _, _, _ = make_regfile Register.Original in
  Alcotest.check_raises "misaligned aborts" (Engine.Check_failed "reg:align")
    (fun () -> ignore (do_read rf ~addr:0x2 ~len:4));
  Alcotest.check_raises "unmapped aborts" (Engine.Check_failed "reg:mapping")
    (fun () -> ignore (do_read rf ~addr:0x100 ~len:4));
  Alcotest.check_raises "access type aborts" (Engine.Check_failed "reg:access")
    (fun () -> ignore (do_write32 rf ~addr:0x10 ~value:1))

let test_regfile_original_boundary_crossing () =
  (* The original matches by start address only (F5's root cause): a
     crossing read reaches the checked memcpy, which reports OOB. *)
  let rf, _, _, _ = make_regfile Register.Original in
  let r =
    Engine.Session.run (Engine.Session.make ()) (fun () -> ignore (do_read rf ~addr:0x10 ~len:8))
  in
  match r.Symex.Engine.errors with
  | [ e ] ->
    Alcotest.(check string) "memcpy site" "reg:memcpy:read" e.Symex.Error.site
  | errors ->
    Alcotest.failf "expected one OOB error, got %d" (List.length errors)

let test_regfile_callbacks () =
  let rf = Register.create ~policy:Register.Fixed ~name:"cb" () in
  let reg = Mem.create ~name:"reg" ~size:4 in
  let log = ref [] in
  ignore
    (Register.add_range rf ~name:"reg" ~base:0 ~access:Register.Read_write
       ~pre_read:(fun () -> log := `Read :: !log)
       ~post_write:(fun () -> log := `Write :: !log)
       reg);
  ignore (do_read rf ~addr:0 ~len:4);
  ignore (do_write32 rf ~addr:0 ~value:5);
  Alcotest.(check int) "both callbacks" 2 (List.length !log);
  Alcotest.(check bool) "order" true (!log = [ `Write; `Read ])

let test_regfile_overlap_rejected () =
  let rf = Register.create ~name:"ov" () in
  let a = Mem.create ~name:"a" ~size:8 in
  let b = Mem.create ~name:"b" ~size:8 in
  ignore (Register.add_range rf ~name:"a" ~base:0 ~access:Register.Read_write a);
  Alcotest.check_raises "overlap"
    (Invalid_argument "Register.add_range: b overlaps a") (fun () ->
        ignore
          (Register.add_range rf ~name:"b" ~base:4 ~access:Register.Read_write b))

let test_regfile_latency () =
  let rf, _, _, _ = make_regfile Register.Fixed in
  let p = Payload.make_read ~addr:(e_int 0) ~len:(e_int 4) in
  let d = Register.transport rf p (Sc_time.ns 3) in
  Alcotest.(check int64) "delay accumulates"
    (Sc_time.to_ps (Sc_time.add (Sc_time.ns 3) Register.access_latency))
    (Sc_time.to_ps d)

(* ------------------------------------------------------------------ *)
(* Router                                                              *)

let test_router_routes_and_rebases () =
  let rf, ctrl, _, _ = make_regfile Register.Fixed in
  let router = Router.create ~name:"bus" () in
  Router.add_target router ~name:"dev" ~base:0x1000_0000 ~size:0x100
    (Register.transport rf);
  let p =
    Payload.make_write32 ~addr:(e_int 0x1000_0004) ~value:(e_int 99)
  in
  ignore (Router.transport router p Sc_time.zero);
  Alcotest.(check bool) "ok" true (Payload.is_ok p);
  match Expr.to_bv (Mem.read32 ctrl 4) with
  | Some v -> Alcotest.(check int64) "rebased write landed" 99L (Bv.to_int64 v)
  | None -> Alcotest.fail "expected concrete"

let test_router_miss () =
  let router = Router.create ~name:"bus" () in
  let p = Payload.make_read ~addr:(e_int 0x4000) ~len:(e_int 4) in
  ignore (Router.transport router p Sc_time.zero);
  Alcotest.(check bool) "address error" true
    (p.Payload.response = Payload.Address_error)

let test_router_overlap_rejected () =
  let router = Router.create ~name:"bus" () in
  Router.add_target router ~name:"a" ~base:0 ~size:16 (fun _ d -> d);
  Alcotest.check_raises "overlap"
    (Invalid_argument "Router.add_target: b overlaps a (router bus)")
    (fun () -> Router.add_target router ~name:"b" ~base:8 ~size:16 (fun _ d -> d))

(* ------------------------------------------------------------------ *)
(* Quantum                                                             *)

let test_quantum_sync () =
  let sched = Pk.Scheduler.create () in
  let ev = Pk.Event.make "tick" in
  let ticks = ref 0 in
  Pk.Scheduler.spawn sched
    (Pk.Process.make "ticker" (fun () ->
         incr ticks;
         Pk.Process.Wait_event ev));
  Pk.Scheduler.run_ready sched;
  Pk.Scheduler.notify_at sched ev (Sc_time.ns 100);
  let q = Tlm.Quantum.create ~max_quantum:(Sc_time.ns 500) sched in
  (* Accumulate below the quantum: no sync. *)
  Tlm.Quantum.add q (Sc_time.ns 200);
  Tlm.Quantum.sync_if_needed q;
  Alcotest.(check int) "no sync yet" 0 (Tlm.Quantum.syncs q);
  (* Cross the quantum: kernel catches up, firing the 100ns event. *)
  Tlm.Quantum.add q (Sc_time.ns 400);
  Tlm.Quantum.sync_if_needed q;
  Alcotest.(check int) "synced" 1 (Tlm.Quantum.syncs q);
  Alcotest.(check int) "ticker ran" 2 !ticks;
  Alcotest.(check int64) "local reset" 0L
    (Sc_time.to_ps (Tlm.Quantum.local_time q))

(* ------------------------------------------------------------------ *)
(* Protocol monitor                                                    *)

let test_monitor_clean_target () =
  let rf, _, _, _ = make_regfile Register.Fixed in
  let mon = Tlm.Monitor.create ~name:"mon" (Register.transport rf) in
  let p = Payload.make_read ~addr:(e_int 0) ~len:(e_int 4) in
  ignore (Tlm.Monitor.transport mon p Sc_time.zero);
  let w = Payload.make_write32 ~addr:(e_int 0) ~value:(e_int 1) in
  ignore (Tlm.Monitor.transport mon w Sc_time.zero);
  Alcotest.(check int) "transactions" 2 (Tlm.Monitor.transactions mon);
  Alcotest.(check int) "reads" 1 (Tlm.Monitor.reads mon);
  Alcotest.(check int) "writes" 1 (Tlm.Monitor.writes mon)

let test_monitor_catches_incomplete_response () =
  (* A broken target that never sets a response status. *)
  let mon = Tlm.Monitor.create ~name:"mon" (fun _ d -> d) in
  let p = Payload.make_read ~addr:(e_int 0) ~len:(e_int 4) in
  Alcotest.check_raises "flagged" (Engine.Check_failed "tlm:response-set")
    (fun () -> ignore (Tlm.Monitor.transport mon p Sc_time.zero))

let test_monitor_catches_decreasing_delay () =
  let mon =
    Tlm.Monitor.create ~name:"mon" (fun p _ ->
        p.Payload.response <- Payload.Ok_response;
        Sc_time.zero)
  in
  let p = Payload.make_write32 ~addr:(e_int 0) ~value:(e_int 1) in
  Alcotest.check_raises "flagged" (Engine.Check_failed "tlm:delay-monotonic")
    (fun () -> ignore (Tlm.Monitor.transport mon p (Sc_time.ns 5)))

let test_monitor_catches_short_read () =
  let mon =
    Tlm.Monitor.create ~name:"mon" (fun p d ->
        p.Payload.response <- Payload.Ok_response;
        p.Payload.data <- [| Expr.int ~width:8 0 |];
        d)
  in
  let p = Payload.make_read ~addr:(e_int 0) ~len:(e_int 4) in
  Alcotest.check_raises "flagged" (Engine.Check_failed "tlm:read-length")
    (fun () -> ignore (Tlm.Monitor.transport mon p Sc_time.zero))

let suite =
  [
    ("payload: write32 layout", `Quick, test_payload_write32_layout);
    ("payload: data32 roundtrip", `Quick, test_payload_data32_roundtrip);
    ("payload: data32 short buffer", `Quick, test_payload_data32_short);
    ("regfile: concrete read/write", `Quick, test_regfile_concrete_rw);
    ("regfile: fixed policy misaligned", `Quick, test_regfile_fixed_misaligned);
    ("regfile: fixed policy unmapped", `Quick, test_regfile_fixed_unmapped);
    ("regfile: fixed policy access type", `Quick, test_regfile_fixed_access_type);
    ("regfile: fixed policy burst crossing", `Quick, test_regfile_fixed_burst);
    ("regfile: original policy asserts", `Quick, test_regfile_original_asserts);
    ("regfile: original boundary crossing = OOB", `Quick,
     test_regfile_original_boundary_crossing);
    ("regfile: callbacks fire", `Quick, test_regfile_callbacks);
    ("regfile: overlaps rejected", `Quick, test_regfile_overlap_rejected);
    ("regfile: latency accumulates", `Quick, test_regfile_latency);
    ("router: routes and rebases", `Quick, test_router_routes_and_rebases);
    ("router: miss gives address error", `Quick, test_router_miss);
    ("router: overlaps rejected", `Quick, test_router_overlap_rejected);
    ("quantum: sync semantics", `Quick, test_quantum_sync);
    ("monitor: clean target passes", `Quick, test_monitor_clean_target);
    ("monitor: incomplete response flagged", `Quick,
     test_monitor_catches_incomplete_response);
    ("monitor: decreasing delay flagged", `Quick,
     test_monitor_catches_decreasing_delay);
    ("monitor: short read flagged", `Quick, test_monitor_catches_short_read);
  ]
