(* Tests for the symbolic-execution engine: forking, assumptions,
   checks, error semantics, limits, search strategies, concretization,
   checked memory and counterexample replay. *)

module Expr = Smt.Expr
module Bv = Smt.Bv
module Engine = Symex.Engine
module Error = Symex.Error
module Search = Symex.Search
module Value = Symex.Value
module Mem = Symex.Mem

let e_int v = Expr.int ~width:32 v

let run ?strategy ?limits ?stop_after_errors body =
  Engine.Session.run
    (Engine.Session.make ?strategy ?limits ?stop_after_errors ())
    body

(* ------------------------------------------------------------------ *)
(* Exploration basics                                                  *)

let test_no_branch_single_path () =
  let r = run (fun () -> ()) in
  Alcotest.(check int) "one path" 1 r.Engine.paths;
  Alcotest.(check int) "completed" 1 r.Engine.paths_completed;
  Alcotest.(check bool) "exhausted" true r.Engine.exhausted

let test_fork_covers_both_sides () =
  let seen = ref [] in
  let r =
    run (fun () ->
        let x = Engine.fresh32 "x" in
        if Engine.branch (Expr.ult x (e_int 10)) then seen := `Lo :: !seen
        else seen := `Hi :: !seen)
  in
  Alcotest.(check int) "two paths" 2 r.Engine.paths;
  Alcotest.(check bool) "both outcomes" true
    (List.mem `Lo !seen && List.mem `Hi !seen)

let test_nested_forks () =
  let r =
    run (fun () ->
        let x = Engine.fresh32 "x" in
        ignore (Engine.branch (Expr.ult x (e_int 10)));
        ignore (Engine.branch (Expr.eq (Expr.band x (e_int 1)) (e_int 0))))
  in
  Alcotest.(check int) "four paths" 4 r.Engine.paths

let test_infeasible_branch_not_forked () =
  let r =
    run (fun () ->
        let x = Engine.fresh32 "x" in
        Engine.assume (Expr.ult x (e_int 10));
        (* x < 100 is implied: no fork *)
        if Engine.branch (Expr.ult x (e_int 100)) then () else Alcotest.fail "unreachable")
  in
  Alcotest.(check int) "one path" 1 r.Engine.paths

let test_assume_kills_path () =
  let r =
    run (fun () ->
        let x = Engine.fresh32 "x" in
        Engine.assume (Expr.ult x (e_int 10));
        Engine.assume (Expr.ugt x (e_int 20));
        Alcotest.fail "unreachable")
  in
  Alcotest.(check int) "infeasible" 1 r.Engine.paths_infeasible;
  Alcotest.(check int) "no errors" 0 (List.length r.Engine.errors)

(* ------------------------------------------------------------------ *)
(* Checks and errors                                                   *)

let test_check_records_and_continues () =
  let passed = ref 0 in
  let r =
    run (fun () ->
        let x = Engine.fresh32 "x" in
        Engine.assume (Expr.ult x (e_int 10));
        Engine.check ~site:"x-not-7" (Expr.ne x (e_int 7));
        (* passing side continues with x != 7 *)
        incr passed)
  in
  Alcotest.(check int) "one error" 1 (List.length r.Engine.errors);
  Alcotest.(check int) "pass side continued" 1 !passed;
  match r.Engine.errors with
  | [ e ] ->
    Alcotest.(check string) "site" "x-not-7" e.Error.site;
    Alcotest.(check bool) "kind" true (e.Error.kind = Error.Assertion_failure);
    (match e.Error.counterexample with
     | [ ("x", v) ] ->
       Alcotest.(check int64) "counterexample is 7" 7L (Bv.to_int64 v)
     | _ -> Alcotest.fail "expected one input")
  | _ -> Alcotest.fail "expected one error"

let test_error_dedup () =
  (* The same failing site on many paths is reported once. *)
  let r =
    run (fun () ->
        let x = Engine.fresh32 "x" in
        ignore (Engine.branch (Expr.ult x (e_int 100)));
        Engine.check ~site:"always" Expr.fls)
  in
  Alcotest.(check int) "deduplicated" 1 (List.length r.Engine.errors);
  Alcotest.(check int) "both paths errored" 2 r.Engine.paths_errored

let test_fatal_check_kind () =
  let r =
    run (fun () ->
        let x = Engine.fresh32 "x" in
        Engine.fatal_check ~site:"guard" (Expr.ult x (e_int 10)))
  in
  match r.Engine.errors with
  | [ e ] -> Alcotest.(check bool) "abort kind" true (e.Error.kind = Error.Abort)
  | _ -> Alcotest.fail "expected one error"

let test_unhandled_exception () =
  let r = run (fun () -> failwith "device blew up") in
  match r.Engine.errors with
  | [ e ] ->
    Alcotest.(check bool) "kind" true (e.Error.kind = Error.Unhandled_exception)
  | _ -> Alcotest.fail "expected one error"

let test_division_by_zero_detector () =
  let r =
    run (fun () ->
        let x = Engine.fresh32 "x" in
        ignore (Value.udiv ~site:"div" (e_int 100) x))
  in
  match r.Engine.errors with
  | [ e ] ->
    Alcotest.(check bool) "kind" true (e.Error.kind = Error.Division_by_zero)
  | _ -> Alcotest.fail "expected one division error"

let test_stop_after_errors () =
  let r =
    run ~stop_after_errors:1 (fun () ->
        let x = Engine.fresh32 "x" in
        if Engine.branch (Expr.ult x (e_int 10)) then
          Engine.check ~site:"first" Expr.fls
        else Engine.check ~site:"second" Expr.fls)
  in
  Alcotest.(check int) "stopped at one" 1 (List.length r.Engine.errors);
  Alcotest.(check bool) "not exhausted" false r.Engine.exhausted

(* ------------------------------------------------------------------ *)
(* Limits                                                              *)

let test_max_paths () =
  let r =
    run ~limits:{ Engine.no_limits with Engine.max_paths = Some 3 }
      (fun () ->
        let x = Engine.fresh32 "x" in
        (* 16 feasible paths *)
        ignore (Engine.branch (Expr.ult x (e_int 2)));
        ignore (Engine.branch (Expr.ult x (e_int 4)));
        ignore (Engine.branch (Expr.ult x (e_int 8)));
        ignore (Engine.branch (Expr.ult x (e_int 16))))
  in
  Alcotest.(check int) "capped" 3 r.Engine.paths;
  Alcotest.(check bool) "not exhausted" false r.Engine.exhausted

let test_max_instructions () =
  let r =
    run ~limits:{ Engine.no_limits with Engine.max_instructions = Some 50 }
      (fun () ->
        let x = Engine.fresh32 "x" in
        let acc = ref x in
        for _ = 1 to 10_000 do
          acc := Expr.add !acc x
        done)
  in
  Alcotest.(check bool) "not exhausted" false r.Engine.exhausted

(* ------------------------------------------------------------------ *)
(* Search strategies                                                   *)

let explore_order strategy =
  let order = ref [] in
  let r =
    run ~strategy (fun () ->
        let x = Engine.fresh32 "x" in
        let b1 = Engine.branch ~site:"b1" (Expr.ult x (e_int 100)) in
        let b2 = Engine.branch ~site:"b2" (Expr.ult x (e_int 200)) in
        order := (b1, b2) :: !order)
  in
  (r, List.rev !order)

let test_strategies_cover_same_paths () =
  List.iter
    (fun strategy ->
       let r, order = explore_order strategy in
       Alcotest.(check int)
         (Search.strategy_to_string strategy ^ " paths")
         3 r.Engine.paths;
       (* x<100 → x<200 implied: 3 feasible outcomes *)
       let sorted = List.sort_uniq compare order in
       Alcotest.(check int)
         (Search.strategy_to_string strategy ^ " outcomes")
         3 (List.length sorted))
    Search.all_strategies

let test_dfs_explores_depth_first () =
  let r, order = explore_order Search.Dfs in
  Alcotest.(check bool) "exhausted" true r.Engine.exhausted;
  (* DFS continues the true side first, then pops the most recent fork. *)
  match order with
  | (true, true) :: _ -> ()
  | _ -> Alcotest.fail "DFS should finish the all-true path first"

(* ------------------------------------------------------------------ *)
(* Concretization                                                      *)

let test_concretize_enumerates () =
  let seen = ref [] in
  let r =
    run (fun () ->
        let x = Engine.fresh32 "x" in
        Engine.assume
          (Expr.and_ (Expr.uge x (e_int 5)) (Expr.ule x (e_int 8)));
        let v = Engine.concretize x in
        seen := Bv.to_int64 v :: !seen)
  in
  Alcotest.(check int) "four paths" 4 r.Engine.paths;
  Alcotest.(check (list int64)) "all values"
    [ 5L; 6L; 7L; 8L ]
    (List.sort Int64.compare !seen)

let test_concretize_concrete_is_free () =
  let r =
    run (fun () ->
        let v = Engine.concretize (e_int 42) in
        Alcotest.(check int64) "value" 42L (Bv.to_int64 v))
  in
  Alcotest.(check int) "one path" 1 r.Engine.paths

(* ------------------------------------------------------------------ *)
(* Checked memory                                                      *)

let test_mem_concrete_rw () =
  let m = Mem.create ~name:"m" ~size:8 in
  Mem.write32 m 0 (e_int 0xDEADBEEF);
  (match Expr.to_bv (Mem.read32 m 0) with
   | Some v -> Alcotest.(check int64) "roundtrip" 0xDEADBEEFL (Bv.to_int64 v)
   | None -> Alcotest.fail "expected concrete");
  (* little endian *)
  match Expr.to_bv (Mem.read_byte m 0) with
  | Some v -> Alcotest.(check int64) "LSB first" 0xEFL (Bv.to_int64 v)
  | None -> Alcotest.fail "expected concrete"

let test_mem_oob_detected () =
  let r =
    run (fun () ->
        let m = Mem.create ~name:"buf" ~size:4 in
        let len = Engine.fresh32 "len" in
        Engine.assume
          (Expr.and_ (Expr.uge len (e_int 1)) (Expr.ule len (e_int 8)));
        ignore (Mem.read_bytes m ~offset:(e_int 0) ~len))
  in
  let oob =
    List.filter (fun (e : Error.t) -> e.Error.kind = Error.Out_of_bounds)
      r.Engine.errors
  in
  Alcotest.(check int) "one OOB error" 1 (List.length oob);
  (* the in-bounds side continues and enumerates len in 1..4 *)
  Alcotest.(check bool) "paths continued" true (r.Engine.paths_completed >= 4)

let test_mem_oob_wraparound () =
  (* offset + len wrapping 32 bits must not bypass the check *)
  let r =
    run (fun () ->
        let m = Mem.create ~name:"buf" ~size:4 in
        ignore (Mem.read_bytes m ~offset:(e_int 0xFFFFFFFF) ~len:(e_int 2)))
  in
  let oob =
    List.filter (fun (e : Error.t) -> e.Error.kind = Error.Out_of_bounds)
      r.Engine.errors
  in
  Alcotest.(check int) "wrap caught" 1 (List.length oob)

let test_mem_symbolic_data () =
  let r =
    run (fun () ->
        let m = Mem.create ~name:"m" ~size:4 in
        let x = Engine.fresh32 "x" in
        Mem.write32 m 0 x;
        let back = Mem.read32 m 0 in
        Engine.check ~site:"roundtrip" (Expr.eq back x))
  in
  Alcotest.(check int) "no errors" 0 (List.length r.Engine.errors)

let test_mem_write32_width_checked () =
  (* write64 has always rejected mis-sized values; write32 must too. *)
  let m = Mem.create ~name:"m" ~size:8 in
  Alcotest.check_raises "narrow value rejected"
    (Invalid_argument "Mem.write32: 32-bit value expected") (fun () ->
        Mem.write32 m 0 (Expr.int ~width:16 7));
  Alcotest.check_raises "wide value rejected"
    (Invalid_argument "Mem.write32: 32-bit value expected") (fun () ->
        Mem.write32 m 0 (Expr.int ~width:64 7))

(* ------------------------------------------------------------------ *)
(* Solver resource limits                                              *)

let test_solver_unknown_kills_path_only () =
  (* A query blowing the conflict budget must kill only the current
     path (KLEE-style), not the whole exploration. *)
  Smt.Solver.clear_caches ();
  let easy_paths = ref 0 in
  let r =
    run
      ~limits:{ Engine.no_limits with Engine.max_solver_conflicts = Some 0 }
      (fun () ->
        let x = Engine.fresh32 "ux" in
        (* With x < 16 the interval prescreen answers x*x = 225 by
           candidate evaluation (x = 15); with x >= 16 it needs real
           SAT search, so conflict budget 0 kills that path only. *)
        ignore (Engine.branch ~site:"easy" (Expr.ult x (e_int 16)));
        ignore (Engine.branch ~site:"hard" (Expr.eq (Expr.mul x x) (e_int 225)));
        incr easy_paths)
  in
  Alcotest.(check bool) "some path killed as unknown" true
    (r.Engine.paths_unknown >= 1);
  Alcotest.(check bool) "other paths still completed" true (!easy_paths >= 1);
  Alcotest.(check bool) "run not reported exhausted" false r.Engine.exhausted;
  Smt.Solver.clear_caches ()

let test_solver_conflict_limit_composes () =
  (* --max-paths and --max-solver-conflicts together: the path budget
     still caps the run even when every query stays cheap. *)
  Smt.Solver.clear_caches ();
  let r =
    run
      ~limits:
        {
          Engine.no_limits with
          Engine.max_paths = Some 2;
          Engine.max_solver_conflicts = Some 10_000;
        }
      (fun () ->
        let x = Engine.fresh32 "cx" in
        ignore (Engine.branch (Expr.ult x (e_int 2)));
        ignore (Engine.branch (Expr.ult x (e_int 4))))
  in
  Alcotest.(check int) "path cap respected" 2 r.Engine.paths;
  Alcotest.(check int) "no unknowns at this budget" 0 r.Engine.paths_unknown;
  Smt.Solver.clear_caches ()

(* ------------------------------------------------------------------ *)
(* Search pop-order golden tests                                       *)

(* The frontier backing store was swapped from a list to an array
   deque; these orders pin the externally observable pop sequence of
   every strategy on a 3-branch testbench (8 paths). *)
let golden_order strategy =
  let acc = ref [] in
  let _ =
    run ~strategy (fun () ->
        let x = Engine.fresh32 "gx" in
        let b1 = Engine.branch ~site:"b1" (Expr.ult x (e_int 64)) in
        let b2 =
          Engine.branch ~site:"b2" (Expr.eq (Expr.band x (e_int 1)) (e_int 0))
        in
        let b3 =
          Engine.branch ~site:"b3" (Expr.eq (Expr.band x (e_int 2)) (e_int 0))
        in
        acc := (b1, b2, b3) :: !acc)
  in
  List.rev_map
    (fun (a, b, c) ->
       let t v = if v then "T" else "F" in
       t a ^ t b ^ t c)
    !acc

let check_golden name strategy expected =
  Alcotest.(check (list string)) name expected (golden_order strategy)

let test_search_order_dfs () =
  check_golden "dfs order" Search.Dfs
    [ "TTT"; "TTF"; "TFT"; "TFF"; "FTT"; "FTF"; "FFT"; "FFF" ]

let test_search_order_bfs () =
  check_golden "bfs order" Search.Bfs
    [ "TTT"; "FTT"; "TFT"; "TTF"; "FFT"; "FTF"; "TFF"; "FFF" ]

(* Pinned against the splitmix64 PRNG (state is one serializable
   int64, so checkpoints can restore the draw sequence exactly). *)
let test_search_order_random () =
  check_golden "random:42 order" (Search.Random_path 42)
    [ "TTT"; "TFT"; "TFF"; "TTF"; "FTT"; "FTF"; "FFT"; "FFF" ];
  check_golden "random:7 order" (Search.Random_path 7)
    [ "TTT"; "TTF"; "TFT"; "FTT"; "FFT"; "FFF"; "FTF"; "TFF" ]

let test_search_order_cover_new () =
  check_golden "cover-new order" Search.Cover_new
    [ "TTT"; "TTF"; "TFT"; "TFF"; "FTT"; "FTF"; "FFT"; "FFF" ]

(* ------------------------------------------------------------------ *)
(* Replay                                                              *)

let toy_testbench () =
  let x = Engine.fresh32 "x" in
  Engine.assume (Expr.ult x (e_int 100));
  if Engine.branch (Expr.ugt x (e_int 50)) then
    Engine.check ~site:"toy" (Expr.ne x (e_int 77))

let test_replay_reproduces () =
  let r = run toy_testbench in
  match r.Engine.errors with
  | [ err ] ->
    (match Engine.replay err.Error.counterexample toy_testbench with
     | Some (Ok replayed) ->
       Alcotest.(check string) "same site" "toy" replayed.Error.site
     | Some (Error msg) -> Alcotest.failf "diverged: %s" msg
     | None -> Alcotest.fail "no failure on replay")
  | _ -> Alcotest.fail "expected exactly one error"

let test_replay_clean_input () =
  match
    Engine.replay [ ("x", Bv.of_int ~width:32 10) ] toy_testbench
  with
  | None -> ()
  | Some _ -> Alcotest.fail "x=10 should not fail"

let test_replay_divergence_detected () =
  (* An assumption-violating input is flagged, not silently accepted. *)
  match
    Engine.replay [ ("x", Bv.of_int ~width:32 1000) ] toy_testbench
  with
  | Some (Error _) -> ()
  | Some (Ok _) | None -> Alcotest.fail "expected divergence"

(* ------------------------------------------------------------------ *)
(* Engine misc                                                         *)

let test_instructions_counted () =
  let r =
    run (fun () ->
        let x = Engine.fresh32 "x" in
        ignore (Expr.add x x))
  in
  Alcotest.(check bool) "instructions > 0" true (r.Engine.instructions > 0)

let test_concrete_mode_check_raises () =
  Alcotest.check_raises "Check_failed" (Engine.Check_failed "here") (fun () ->
      Engine.check ~site:"here" Expr.fls)

let test_nested_run_rejected () =
  let r =
    run (fun () ->
        match run (fun () -> ()) with
        | _ -> Alcotest.fail "nested run must be rejected")
  in
  (* the Failure surfaces as an unhandled-exception error *)
  Alcotest.(check int) "error recorded" 1 (List.length r.Engine.errors)

let test_error_counterexample_order () =
  let r =
    run (fun () ->
        let a = Engine.fresh32 "a" in
        let b = Engine.fresh32 "b" in
        Engine.assume (Expr.eq a (e_int 1));
        Engine.assume (Expr.eq b (e_int 2));
        Engine.check ~site:"boom" Expr.fls)
  in
  match r.Engine.errors with
  | [ e ] ->
    Alcotest.(check (list string)) "inputs in creation order" [ "a"; "b" ]
      (List.map fst e.Error.counterexample)
  | _ -> Alcotest.fail "expected one error"

(* ------------------------------------------------------------------ *)
(* Random-testing baseline                                             *)

let random_body () =
  (* fails iff x mod 8 = 3: random testing needs ~8 trials *)
  let x = Engine.fresh32 "x" in
  let m = Expr.urem x (e_int 8) in
  Engine.check ~site:"mod8" (Expr.ne m (e_int 3))

let test_random_finds_bug () =
  let r = Engine.random_test ~seed:1 random_body in
  match r.Engine.failure with
  | Some (err, trial) ->
    Alcotest.(check string) "site" "mod8" err.Error.site;
    Alcotest.(check bool) "found within a few trials" true (trial <= 64);
    (* the recorded inputs reproduce the failure *)
    (match err.Error.counterexample with
     | [ ("x", v) ] ->
       Alcotest.(check int64) "counterexample mod 8 = 3" 3L
         (Int64.rem (Bv.to_int64 v) 8L)
     | _ -> Alcotest.fail "expected one input")
  | None -> Alcotest.fail "random testing should find the bug"

let test_random_deterministic_seed () =
  let a = Engine.random_test ~seed:7 random_body in
  let b = Engine.random_test ~seed:7 random_body in
  Alcotest.(check bool) "same trial count" true
    (match a.Engine.failure, b.Engine.failure with
     | Some (_, ta), Some (_, tb) -> ta = tb
     | None, None -> true
     | _ -> false)

let test_random_rejection () =
  let r =
    Engine.random_test ~seed:3 ~max_trials:50 (fun () ->
        let x = Engine.fresh32 "x" in
        (* essentially always rejected *)
        Engine.assume (Expr.ult x (e_int 4)))
  in
  Alcotest.(check int) "all trials ran" 50 r.Engine.trials;
  Alcotest.(check bool) "most rejected" true (r.Engine.rejected >= 45);
  Alcotest.(check bool) "no failure" true (r.Engine.failure = None)

let test_random_trial_limit () =
  let r = Engine.random_test ~seed:5 ~max_trials:10 (fun () -> ()) in
  Alcotest.(check int) "stops at limit" 10 r.Engine.trials

(* ------------------------------------------------------------------ *)
(* Budgets, graceful stops and checkpoint serialization                *)

let forking_tb () =
  let x = Engine.fresh32 "x" in
  ignore (Engine.branch (Expr.ult x (e_int 10)));
  ignore (Engine.branch (Expr.ult x (e_int 100)))

let test_deadline_stop () =
  let r =
    run ~limits:{ Engine.no_limits with max_seconds = Some 0.0 } forking_tb
  in
  Alcotest.(check bool) "deadline reason" true
    (r.Engine.stop_reason = Some Symex.Budget.Deadline);
  Alcotest.(check bool) "not exhausted" false r.Engine.exhausted

let test_memory_stop () =
  (* A zero watermark is always exceeded — the run stops at the first
     poll with a Memory reason instead of crashing. *)
  let r =
    run ~limits:{ Engine.no_limits with max_memory_mb = Some 0 } forking_tb
  in
  Alcotest.(check bool) "memory reason" true
    (r.Engine.stop_reason = Some Symex.Budget.Memory);
  Alcotest.(check bool) "not exhausted" false r.Engine.exhausted

let test_paths_stop_reason () =
  let r =
    run ~limits:{ Engine.no_limits with max_paths = Some 1 } forking_tb
  in
  Alcotest.(check int) "one path" 1 r.Engine.paths;
  Alcotest.(check bool) "paths reason" true
    (r.Engine.stop_reason = Some Symex.Budget.Paths)

let test_interrupt_stop () =
  Symex.Budget.interrupt_now ();
  let r =
    Fun.protect ~finally:Symex.Budget.clear_interrupt (fun () ->
        run forking_tb)
  in
  Alcotest.(check bool) "interrupt reason" true
    (r.Engine.stop_reason = Some Symex.Budget.Interrupt);
  Alcotest.(check bool) "not exhausted" false r.Engine.exhausted

let test_solver_timeout_degrades () =
  (* x*x = 3 has no solution mod 2^32 but needs real CDCL work; a zero
     per-query budget makes it Unknown, which kills only that path. *)
  let r =
    run ~limits:{ Engine.no_limits with solver_timeout_ms = Some 0 }
      (fun () ->
        let x = Engine.fresh32 "x" in
        ignore (Engine.branch (Expr.eq (Expr.mul x x) (e_int 3))))
  in
  Alcotest.(check int) "path lost to the budget" 1 r.Engine.paths_unknown;
  Alcotest.(check bool) "degraded, not stopped" true
    (r.Engine.stop_reason = None);
  Alcotest.(check bool) "not exhaustive" false r.Engine.exhausted

let test_budget_reason_strings () =
  List.iter
    (fun reason ->
       let s = Symex.Budget.reason_to_string reason in
       Alcotest.(check bool) ("roundtrip " ^ s) true
         (Symex.Budget.reason_of_string s = Some reason))
    Symex.Budget.[ Paths; Instructions; Deadline; Memory; Errors; Interrupt ];
  Alcotest.(check bool) "unknown rejected" true
    (Symex.Budget.reason_of_string "bogus" = None)

let test_decision_string_roundtrip () =
  let open Symex.Decision in
  List.iter
    (fun d ->
       match of_string (to_string d) with
       | Ok d' ->
         Alcotest.(check bool) ("roundtrip " ^ to_string d) true (d = d')
       | Error e -> Alcotest.fail e)
    [ Dir true; Dir false;
      Pick { value = Bv.make ~width:32 0xdeadbeefL; dir = true };
      Pick { value = Bv.make ~width:7 0x2aL; dir = false };
      Pick { value = Bv.zero 1; dir = true } ];
  Alcotest.(check bool) "garbage rejected" true
    (match of_string "Q" with Error _ -> true | Ok _ -> false)

let sample_error =
  {
    Error.kind = Error.Abort;
    site = "reg:align";
    message = "unaligned access";
    counterexample =
      [ ("addr", Bv.make ~width:32 0x2L); ("len", Bv.make ~width:32 1L) ];
    path_id = 3;
    instructions = 120;
    found_after = 0.25;
    validated = true;
  }

let test_error_json_roundtrip () =
  match Error.of_json (Error.to_json sample_error) with
  | Ok e -> Alcotest.(check bool) "roundtrip" true (e = sample_error)
  | Error msg -> Alcotest.fail msg

let test_checkpoint_json_roundtrip () =
  let ck =
    {
      Symex.Checkpoint.label = "t4";
      strategy = "random:42";
      frontier =
        [ ("site-a", [| Symex.Decision.Dir true; Symex.Decision.Dir false |]);
          ("site-b",
           [| Symex.Decision.Pick
                { value = Bv.make ~width:32 5L; dir = false } |]) ];
      leases = [ ("site-c", [| Symex.Decision.Dir false |], 2) ];
      visits = [ ("site-a", 2); ("site-b", 1) ];
      rng = 0x123456789abcdef0L;
      paths = 7;
      completed = 4;
      errored = 1;
      infeasible = 1;
      unknown = 1;
      instructions = 321;
      wall_time = 1.25;
      solver = { Smt.Solver.Stats.zero with Smt.Solver.Stats.queries = 17 };
      errors = [ sample_error ];
      degraded = true;
      stop_reason = Some "deadline";
    }
  in
  match Symex.Checkpoint.of_json (Symex.Checkpoint.to_json ck) with
  | Ok ck' -> Alcotest.(check bool) "roundtrip" true (ck = ck')
  | Error msg -> Alcotest.fail msg

let test_checkpoint_file_roundtrip () =
  let path = Filename.temp_file "symsysc-ck" ".json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
       let ck =
         {
           Symex.Checkpoint.label = "t1";
           strategy = "dfs";
           frontier = [];
           leases = [];
           visits = [];
           rng = 1L;
           paths = 0;
           completed = 0;
           errored = 0;
           infeasible = 0;
           unknown = 0;
           instructions = 0;
           wall_time = 0.0;
           solver = Smt.Solver.Stats.zero;
           errors = [];
           degraded = false;
           stop_reason = None;
         }
       in
       Symex.Checkpoint.save path ck;
       match Symex.Checkpoint.load path with
       | Ok ck' -> Alcotest.(check bool) "file roundtrip" true (ck = ck')
       | Error msg -> Alcotest.fail msg);
  match Symex.Checkpoint.load "/nonexistent/ck.json" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "loading a missing file should fail"

let suite =
  [
    ("engine: straight-line is one path", `Quick, test_no_branch_single_path);
    ("engine: fork covers both sides", `Quick, test_fork_covers_both_sides);
    ("engine: nested forks", `Quick, test_nested_forks);
    ("engine: implied branch does not fork", `Quick,
     test_infeasible_branch_not_forked);
    ("engine: infeasible assume kills path", `Quick, test_assume_kills_path);
    ("engine: check records and continues", `Quick,
     test_check_records_and_continues);
    ("engine: errors deduplicated by site", `Quick, test_error_dedup);
    ("engine: fatal check is an abort", `Quick, test_fatal_check_kind);
    ("engine: unhandled exception reported", `Quick, test_unhandled_exception);
    ("engine: division by zero detector", `Quick,
     test_division_by_zero_detector);
    ("engine: stop after N errors", `Quick, test_stop_after_errors);
    ("engine: max paths limit", `Quick, test_max_paths);
    ("engine: max instructions limit", `Quick, test_max_instructions);
    ("search: all strategies cover the space", `Quick,
     test_strategies_cover_same_paths);
    ("search: dfs order", `Quick, test_dfs_explores_depth_first);
    ("concretize: enumerates feasible values", `Quick,
     test_concretize_enumerates);
    ("concretize: concrete value is free", `Quick,
     test_concretize_concrete_is_free);
    ("mem: concrete read/write", `Quick, test_mem_concrete_rw);
    ("mem: out-of-bounds detected", `Quick, test_mem_oob_detected);
    ("mem: 32-bit wrap cannot bypass bounds", `Quick, test_mem_oob_wraparound);
    ("mem: symbolic data roundtrip", `Quick, test_mem_symbolic_data);
    ("mem: write32 width checked", `Quick, test_mem_write32_width_checked);
    ("engine: solver unknown kills one path", `Quick,
     test_solver_unknown_kills_path_only);
    ("engine: conflict limit composes with max-paths", `Quick,
     test_solver_conflict_limit_composes);
    ("search: golden pop order, dfs", `Quick, test_search_order_dfs);
    ("search: golden pop order, bfs", `Quick, test_search_order_bfs);
    ("search: golden pop order, random", `Quick, test_search_order_random);
    ("search: golden pop order, cover-new", `Quick,
     test_search_order_cover_new);
    ("replay: reproduces the failure", `Quick, test_replay_reproduces);
    ("replay: clean input passes", `Quick, test_replay_clean_input);
    ("replay: divergence detected", `Quick, test_replay_divergence_detected);
    ("engine: instruction accounting", `Quick, test_instructions_counted);
    ("engine: concrete-mode check raises", `Quick,
     test_concrete_mode_check_raises);
    ("engine: nested run rejected", `Quick, test_nested_run_rejected);
    ("engine: counterexample input order", `Quick,
     test_error_counterexample_order);
    ("random baseline: finds a planted bug", `Quick, test_random_finds_bug);
    ("random baseline: deterministic seed", `Quick,
     test_random_deterministic_seed);
    ("random baseline: rejection sampling", `Quick, test_random_rejection);
    ("random baseline: trial limit", `Quick, test_random_trial_limit);
    ("budget: deadline stops gracefully", `Quick, test_deadline_stop);
    ("budget: memory watermark stops gracefully", `Quick, test_memory_stop);
    ("budget: max-paths records its reason", `Quick, test_paths_stop_reason);
    ("budget: interrupt stops gracefully", `Quick, test_interrupt_stop);
    ("budget: solver timeout degrades one path", `Quick,
     test_solver_timeout_degrades);
    ("budget: reason strings roundtrip", `Quick, test_budget_reason_strings);
    ("decision: string roundtrip", `Quick, test_decision_string_roundtrip);
    ("error: JSON roundtrip", `Quick, test_error_json_roundtrip);
    ("checkpoint: JSON roundtrip", `Quick, test_checkpoint_json_roundtrip);
    ("checkpoint: file roundtrip", `Quick, test_checkpoint_file_roundtrip);
    ("engine: branch coverage reported", `Quick, fun () ->
        let r =
          run (fun () ->
              let x = Engine.fresh32 "x" in
              ignore (Engine.branch ~site:"site-a" (Expr.ult x (e_int 5)));
              ignore (Engine.branch ~site:"site-b" (Expr.ult x (e_int 9))))
        in
        let count site =
          match List.assoc_opt site r.Engine.branch_coverage with
          | Some n -> n
          | None -> 0
        in
        Alcotest.(check bool) "site-a covered" true (count "site-a" >= 2);
        Alcotest.(check bool) "site-b covered" true (count "site-b" >= 2));
  ]
