(* Snapshot-forking tests.

   Two layers: (1) per-peripheral snapshot/restore round trips through
   the unified {!Tlm.Peripheral.S} surface — capture, mutate, restore,
   and check every observable register (and [reset] = the
   construction-time snapshot); (2) the fork-equivalence matrix —
   snapshot fast-forward is a pure optimization over decision-prefix
   replay, so a run with snapshots on must produce a report that
   {!Symsysc.Diff.compare_reports} finds identical (verdict, paths,
   instructions, error set, coverage) to a [--no-snapshots] run, for
   every strategy and testbench, sequentially, across a worker pool,
   and through a mid-run checkpoint/resume. *)

module Expr = Smt.Expr
module Bv = Smt.Bv
module Value = Symex.Value
module Engine = Symex.Engine
module Search = Symex.Search
module Payload = Tlm.Payload
module Sc_time = Pk.Sc_time
module Verify = Symsysc.Verify
module Report = Symsysc.Report
module Diff = Symsysc.Diff

(* ------------------------------------------------------------------ *)
(* Observable-state helpers                                            *)

let read32_via serve dev offset =
  let p =
    Payload.make_read ~addr:(Value.of_int offset) ~len:(Value.of_int 4)
  in
  ignore (serve dev p Sc_time.zero);
  match Expr.to_bv (Payload.data32 p) with
  | Some v -> Int64.to_int (Bv.to_int64 v)
  | None -> Alcotest.fail "expected concrete read"

let write32_via serve dev offset value =
  let p =
    Payload.make_write32 ~addr:(Value.of_int offset)
      ~value:(Value.of_int value)
  in
  ignore (serve dev p Sc_time.zero)

(* ------------------------------------------------------------------ *)
(* PLIC round trip                                                     *)

let plic_cfg = Plic.Config.scaled ~num_sources:4

let make_plic () =
  let sched = Pk.Scheduler.create () in
  Pk.Sc_compat.sc_set_context sched;
  let dut =
    Plic.Peripheral.make
      { Plic.Peripheral.pc_variant = Plic.Config.Fixed;
        pc_faults = [];
        pc_cfg = plic_cfg }
      sched
  in
  let hart = Plic.Hart.create () in
  Plic.connect_hart dut 0 hart;
  Pk.Scheduler.run_ready sched;
  (sched, dut)

(* Every readable register of the 4-source PLIC, plus the hart's
   interrupt line. *)
let plic_observables dut =
  let r = read32_via Plic.Peripheral.serve dut in
  List.concat
    [ List.init plic_cfg.Plic.Config.num_sources (fun i ->
          r (Plic.Config.priority_base + (4 * i)));
      [ r Plic.Config.pending_base;
        r Plic.Config.enable_base;
        r Plic.Config.threshold_base ] ]

let test_plic_roundtrip () =
  let sched, dut = make_plic () in
  let w = write32_via Plic.Peripheral.serve dut in
  let fresh = plic_observables dut in
  (* Mutate: priorities, enables, threshold, and a latched pending bit. *)
  for id = 1 to plic_cfg.Plic.Config.num_sources do
    w (Plic.Config.priority_base + (4 * (id - 1))) id
  done;
  w Plic.Config.enable_base (-1);
  w Plic.Config.threshold_base 1;
  Plic.trigger_interrupt dut (Value.of_int 2);
  Pk.Scheduler.run_until sched (Sc_time.us 1);
  let s1 = Plic.Peripheral.snapshot dut in
  let mutated = plic_observables dut in
  Alcotest.(check bool) "mutation is visible" false (fresh = mutated);
  (* Scribble over everything, then restore the snapshot. *)
  for id = 1 to plic_cfg.Plic.Config.num_sources do
    w (Plic.Config.priority_base + (4 * (id - 1))) 7
  done;
  w Plic.Config.enable_base 0;
  w Plic.Config.threshold_base 3;
  Plic.Peripheral.restore dut s1;
  Alcotest.(check (list int)) "restore reproduces snapshot state" mutated
    (plic_observables dut);
  (* Snapshot of a restored device round-trips to the same observables. *)
  Plic.Peripheral.restore dut (Plic.Peripheral.snapshot dut);
  Alcotest.(check (list int)) "snapshot/restore is idempotent" mutated
    (plic_observables dut);
  Plic.Peripheral.reset dut;
  Alcotest.(check (list int)) "reset = construction-time snapshot" fresh
    (plic_observables dut)

(* ------------------------------------------------------------------ *)
(* CLINT round trip                                                    *)

let test_clint_roundtrip () =
  let sched = Pk.Scheduler.create () in
  Pk.Sc_compat.sc_set_context sched;
  let clint =
    Clint.Peripheral.make
      { Clint.Peripheral.cc_policy = Tlm.Register.Fixed;
        cc_cfg = Clint.Config.fe310 }
      sched
  in
  let port = Clint.Port.create () in
  Clint.connect clint port;
  Pk.Scheduler.run_ready sched;
  let r = read32_via Clint.Peripheral.serve clint in
  let w = write32_via Clint.Peripheral.serve clint in
  let observe () =
    [ r Clint.msip_base;
      r Clint.mtimecmp_base;
      r (Clint.mtimecmp_base + 4) ]
  in
  let fresh = observe () in
  w Clint.msip_base 1;
  w Clint.mtimecmp_base 0x1234;
  w (Clint.mtimecmp_base + 4) 0x5;
  let s1 = Clint.Peripheral.snapshot clint in
  let mutated = observe () in
  Alcotest.(check bool) "mutation is visible" false (fresh = mutated);
  w Clint.msip_base 0;
  w Clint.mtimecmp_base 0xdead;
  Clint.Peripheral.restore clint s1;
  Alcotest.(check (list int)) "restore reproduces snapshot state" mutated
    (observe ());
  Clint.Peripheral.reset clint;
  Alcotest.(check (list int)) "reset = construction-time snapshot" fresh
    (observe ())

(* ------------------------------------------------------------------ *)
(* UART round trip                                                     *)

let test_uart_roundtrip () =
  let sched = Pk.Scheduler.create () in
  Pk.Sc_compat.sc_set_context sched;
  let uart =
    Uart.Peripheral.make
      { Uart.Peripheral.uc_policy = Tlm.Register.Fixed;
        uc_clock = Sc_time.ns 10;
        uc_irq = (fun () -> ()) }
      sched
  in
  Pk.Scheduler.run_ready sched;
  let r = read32_via Uart.Peripheral.serve uart in
  let w = write32_via Uart.Peripheral.serve uart in
  let observe () =
    [ r Uart.div_base; r Uart.txctrl_base; r Uart.rxctrl_base;
      r Uart.ie_base; Uart.tx_level uart; Uart.rx_level uart;
      List.length (Uart.transmitted uart) ]
  in
  let fresh = observe () in
  w Uart.div_base 3;
  w Uart.txctrl_base 1;
  w Uart.rxctrl_base 1;
  w Uart.ie_base 3;
  w Uart.txdata_base 0x41;
  w Uart.txdata_base 0x42;
  Uart.receive_byte uart (Value.of_int 0x55);
  let s1 = Uart.Peripheral.snapshot uart in
  let mutated = observe () in
  Alcotest.(check bool) "mutation is visible" false (fresh = mutated);
  (* Drain the FIFOs the snapshot captured, then restore. *)
  ignore (r Uart.rxdata_base);
  Pk.Scheduler.run_until sched (Sc_time.us 10);
  Uart.Peripheral.restore uart s1;
  Alcotest.(check (list int)) "restore reproduces snapshot state (FIFOs \
                               included)" mutated (observe ());
  Uart.Peripheral.reset uart;
  Alcotest.(check (list int)) "reset = construction-time snapshot" fresh
    (observe ())

(* ------------------------------------------------------------------ *)
(* Fork-equivalence matrix                                             *)

let scenario ?strategy ?workers ~snapshots () =
  Verify.scenario ~num_sources:4 ~t5_max_len:8 ?strategy ?workers ~snapshots ()

let strategies =
  [ ("dfs", Search.Dfs);
    ("bfs", Search.Bfs);
    ("random", Search.Random_path 42);
    ("cover-new", Search.Cover_new) ]

let tests = [ "t1"; "t2"; "t3"; "t4"; "t5" ]

(* The report diff compares the deterministic fields — verdict, path
   and instruction counters, error set, coverage — and ignores the
   fields that legitimately differ (wall time, the snapshot counters
   themselves). *)
let check_same label a b =
  let diffs = Diff.compare_reports (Report.to_json a) (Report.to_json b) in
  Alcotest.(check (list string)) label [] diffs

let check_matrix strategy name () =
  let baseline = Verify.run_test (scenario ~strategy ~snapshots:false ()) name in
  Alcotest.(check int) "no-snapshots run takes no snapshots" 0
    baseline.Report.engine.Engine.snapshots_taken;
  let seq = Verify.run_test (scenario ~strategy ~snapshots:true ()) name in
  check_same "snapshot sequential equals replay baseline" baseline seq;
  let par =
    Verify.run_test (scenario ~strategy ~workers:4 ~snapshots:true ()) name
  in
  check_same "snapshot 4-worker equals replay baseline" baseline par;
  (* Multi-path runs must actually exercise the fast-forward machinery
     sequentially (worker pools cross a process boundary, where forks
     degrade to replay by design). *)
  if baseline.Report.engine.Engine.paths > 1 then begin
    Alcotest.(check bool) "sequential run restored snapshots" true
      (seq.Report.engine.Engine.snapshot_restores > 0);
    Alcotest.(check bool) "fast-forward saved re-executed instructions" true
      (seq.Report.engine.Engine.instructions_saved > 0)
  end

let matrix_cases =
  List.concat_map
    (fun (sname, strategy) ->
       List.map
         (fun name ->
            ( Printf.sprintf "fork equivalence: %s/%s" sname name,
              `Slow,
              check_matrix strategy name ))
         tests)
    strategies

(* ------------------------------------------------------------------ *)
(* Checkpoint/resume: a resumed snapshot run equals a straight-through
   replay run.  The checkpoint stores decision prefixes only (snapshots
   never cross process boundaries), so the resumed process rebuilds its
   first paths by replay — counted in [replay_fallbacks] — and must
   still land on the identical report. *)

let with_session sc f = { sc with Verify.session = f sc.Verify.session }

let check_resume strategy () =
  let name = "t4" in
  let baseline =
    Verify.run_test (scenario ~strategy ~snapshots:false ()) name
  in
  let saved = ref None in
  let policy =
    { Engine.write = (fun ck -> saved := Some ck); every_s = infinity }
  in
  let truncated_sc =
    with_session (scenario ~strategy ~snapshots:true ()) (fun s ->
        { s with
          Engine.Session.checkpoint = Some policy;
          limits =
            { s.Engine.Session.limits with
              Engine.max_instructions = Some 50 } })
  in
  let _truncated = Verify.run_test truncated_sc name in
  match !saved with
  | None -> Alcotest.fail "no checkpoint written"
  | Some ck ->
    let resumed =
      Verify.run_test
        (with_session (scenario ~strategy ~snapshots:true ()) (fun s ->
             { s with Engine.Session.resume = Some ck }))
        name
    in
    Alcotest.(check bool) "resumed run exhausted" true
      resumed.Report.engine.Engine.exhausted;
    check_same "resumed snapshot run equals replay baseline" baseline resumed

let resume_cases =
  List.map
    (fun (sname, strategy) ->
       ( Printf.sprintf "fork equivalence through resume: %s/t4" sname,
         `Slow,
         check_resume strategy ))
    strategies

let suite =
  [ ("plic snapshot round trip", `Quick, test_plic_roundtrip);
    ("clint snapshot round trip", `Quick, test_clint_roundtrip);
    ("uart snapshot round trip", `Quick, test_uart_roundtrip) ]
  @ matrix_cases @ resume_cases
