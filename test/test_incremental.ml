(* Incremental-solving equivalence tests.

   Incremental scope solving (Solver.Scope: retained CDCL instances
   queried under guard assumptions) is a pure optimization: every
   verdict, path total, instruction count and (site, kind) bug set must
   be identical with it on or off, sequentially or across a worker
   pool, straight through or checkpointed mid-scope and resumed.  The
   matrix here runs the incremental-off sequential baseline against
   incremental-on runs at workers 1 and 4 for every strategy and
   testbench, then checks the Section 5.3 detection matrix is
   mode-independent. *)

module Engine = Symex.Engine
module Search = Symex.Search
module Error = Symex.Error
module Solver = Smt.Solver
module Verify = Symsysc.Verify
module Report = Symsysc.Report

let scenario ?strategy ?workers () =
  Verify.scenario ~num_sources:4 ~t5_max_len:8 ?strategy ?workers ()

let strategies =
  [ ("dfs", Search.Dfs);
    ("bfs", Search.Bfs);
    ("random", Search.Random_path 42);
    ("cover-new", Search.Cover_new) ]

let tests = [ "t1"; "t2"; "t3"; "t4"; "t5" ]

(* The pool de-duplicates errors by (site, kind); compare identity. *)
let fingerprint (r : Report.t) =
  let e = r.Report.engine in
  ( r.Report.verdict,
    e.Engine.paths,
    e.Engine.paths_completed,
    e.Engine.paths_errored,
    e.Engine.paths_infeasible,
    e.Engine.paths_unknown,
    e.Engine.instructions,
    e.Engine.exhausted,
    List.sort_uniq compare
      (List.map
         (fun (err : Error.t) ->
            (err.Error.site, Error.kind_to_string err.Error.kind))
         e.Engine.errors) )

let with_incremental on f =
  Fun.protect
    ~finally:(fun () ->
        Solver.set_incremental true;
        Solver.clear_caches ())
    (fun () ->
       Solver.set_incremental on;
       Solver.clear_caches ();
       f ())

let check_matrix strategy name () =
  let baseline =
    with_incremental false (fun () ->
        Verify.run_test (scenario ~strategy ()) name)
  in
  let seq =
    with_incremental true (fun () ->
        Verify.run_test (scenario ~strategy ()) name)
  in
  Alcotest.(check bool) "incremental sequential equals scratch baseline" true
    (fingerprint seq = fingerprint baseline);
  let par =
    with_incremental true (fun () ->
        Verify.run_test (scenario ~strategy ~workers:4 ()) name)
  in
  Alcotest.(check bool) "incremental 4-worker equals scratch baseline" true
    (fingerprint par = fingerprint baseline)

let matrix_cases =
  List.concat_map
    (fun (sname, strategy) ->
       List.map
         (fun name ->
            ( Printf.sprintf "incremental equivalence: %s/%s" sname name,
              `Slow,
              check_matrix strategy name ))
         tests)
    strategies

(* ------------------------------------------------------------------ *)
(* Mid-scope checkpoint/resume                                         *)

let with_session sc f = { sc with Verify.session = f sc.Verify.session }

(* An instruction budget that fires partway through a path, so the
   checkpoint is written while the per-path solver scope is mid-stack;
   the resumed process (fresh scopes, cold instances) must land on the
   same exploration. *)
let check_midscope_resume strategy () =
  let sc = scenario ~strategy () in
  let name = "t4" in
  let straight =
    with_incremental true (fun () -> Verify.run_test sc name)
  in
  let saved = ref None in
  let policy =
    { Engine.write = (fun ck -> saved := Some ck); every_s = infinity }
  in
  let truncated_sc =
    with_session sc (fun s ->
        { s with
          Engine.Session.checkpoint = Some policy;
          limits =
            { s.Engine.Session.limits with
              Engine.max_instructions = Some 50 } })
  in
  let _truncated =
    with_incremental true (fun () -> Verify.run_test truncated_sc name)
  in
  match !saved with
  | None -> Alcotest.fail "no checkpoint written"
  | Some ck ->
    let resumed =
      with_incremental true (fun () ->
          Verify.run_test
            (with_session sc
               (fun s -> { s with Engine.Session.resume = Some ck }))
            name)
    in
    Alcotest.(check bool) "resumed run exhausted" true
      resumed.Report.engine.Engine.exhausted;
    Alcotest.(check bool) "mid-scope resume equals straight-through" true
      (fingerprint resumed = fingerprint straight)

let midscope_cases =
  List.map
    (fun (sname, strategy) ->
       ( Printf.sprintf "mid-scope resume equivalence: %s/t4" sname,
         `Slow,
         check_midscope_resume strategy ))
    strategies

(* ------------------------------------------------------------------ *)
(* Detection matrix mode-independence                                  *)

(* The fault-injection campaign of Section 5.3 — the same matrix pinned
   as a golden in the resilience suite — must not notice the solving
   mode: detection flags and first-detection latencies are identical
   with incremental solving on and off. *)
let test_detection_matrix_mode_independent () =
  let run on =
    with_incremental on (fun () -> Verify.detection_matrix (scenario ()))
  in
  let summarize m =
    List.map
      (fun (fault, cells) ->
         ( fault,
           List.map
             (fun (test, (c : Verify.matrix_cell)) ->
                (test, c.Verify.detected, c.Verify.first_path))
             cells ))
      m
  in
  Alcotest.(check bool) "matrix identical across modes" true
    (summarize (run true) = summarize (run false))

let suite =
  matrix_cases @ midscope_cases
  @ [ ("detection matrix: mode independent", `Slow,
       test_detection_matrix_mode_independent) ]
