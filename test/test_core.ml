(* Integration tests: the paper's experiments at miniature scale — the
   symbolic tests T1..T5 against the original and fixed PLIC, the bug
   detection pattern of Tables 1 and 2, counterexample replay, and the
   verification orchestration. *)

module Engine = Symex.Engine
module Error = Symex.Error
module Search = Symex.Search
module Config = Plic.Config
module Fault = Plic.Fault
module Tests = Symsysc.Tests
module Verify = Symsysc.Verify
module Report = Symsysc.Report

(* Miniature scale keeps each exploration well under a second. *)
let scenario ?strategy () =
  Verify.scenario ~num_sources:4 ~t5_max_len:8 ~max_paths:3000 ?strategy ()

let errors_of (r : Report.t) = r.Report.engine.Engine.errors
let sites_of r = List.map (fun (e : Error.t) -> e.Error.site) (errors_of r)

let find_bugs bug r =
  List.filter (Verify.bug_matches bug) (errors_of r)

(* ------------------------------------------------------------------ *)
(* Table 1 pattern on the original PLIC                                *)

let table1_reports = lazy (Verify.table1 (scenario ()))

let verdicts () =
  List.map
    (fun (r : Report.t) -> (r.Report.test_name, r.Report.verdict))
    (Lazy.force table1_reports)

let test_table1_verdicts () =
  Alcotest.(check (list (pair string string)))
    "verdict pattern matches the paper"
    [
      ("T1", "Fail (1)"); ("T2", "Pass"); ("T3", "Pass");
      ("T4", "Fail (3)"); ("T5", "Fail (4)");
    ]
    (List.map
       (fun (name, v) -> (name, Report.verdict_to_string v))
       (verdicts ()))

let report_for name =
  List.find
    (fun (r : Report.t) -> r.Report.test_name = name)
    (Lazy.force table1_reports)

let test_t1_finds_f1 () =
  let r = report_for "T1" in
  Alcotest.(check (list string)) "exactly F1" [ "plic:trigger:bounds" ]
    (sites_of r);
  match errors_of r with
  | [ e ] -> Alcotest.(check bool) "abort kind" true (e.Error.kind = Error.Abort)
  | _ -> Alcotest.fail "expected one error"

let test_t4_finds_f2_f3_f4 () =
  let r = report_for "T4" in
  List.iter
    (fun bug ->
       Alcotest.(check bool)
         (Verify.bug_to_string bug ^ " found by T4")
         true
         (find_bugs bug r <> []))
    [ Verify.F2; Verify.F3; Verify.F4 ];
  Alcotest.(check (list string)) "and nothing else" []
    (List.filter
       (fun s -> not (List.mem s [ "reg:align"; "reg:mapping"; "reg:access" ]))
       (sites_of r))

let test_t5_finds_f3_f4_f5_f6 () =
  let r = report_for "T5" in
  List.iter
    (fun bug ->
       Alcotest.(check bool)
         (Verify.bug_to_string bug ^ " found by T5")
         true
         (find_bugs bug r <> []))
    [ Verify.F3; Verify.F4; Verify.F5; Verify.F6 ];
  Alcotest.(check bool) "F2 not found by T5 (write path)" true
    (find_bugs Verify.F2 r = [])

let test_exploration_exhausts () =
  List.iter
    (fun (r : Report.t) ->
       Alcotest.(check bool)
         (r.Report.test_name ^ " exhausted")
         true r.Report.engine.Engine.exhausted)
    (Lazy.force table1_reports)

let test_solver_dominates () =
  (* The paper observes solver time vastly dominating; at our scale it
     still dominates every test but the trivial ones. *)
  let r = report_for "T2" in
  Alcotest.(check bool) "solver fraction > 50%" true
    (Report.solver_fraction r > 0.5)

(* ------------------------------------------------------------------ *)
(* The fixed PLIC passes everything                                    *)

let test_fixed_passes_all () =
  let sc = scenario () in
  let params = Tests.with_variant Config.Fixed sc.Verify.params in
  List.iter
    (fun (name, test) ->
       let report = Engine.Session.run sc.Verify.session (test params) in
       Alcotest.(check int) (name ^ " clean on fixed PLIC") 0
         (List.length report.Engine.errors))
    Tests.all

(* ------------------------------------------------------------------ *)
(* Injected-fault detection pattern (Table 2)                          *)

let detects test fault =
  let sc = scenario () in
  let params =
    Tests.with_faults [ fault ] (Tests.with_variant Config.Fixed sc.Verify.params)
  in
  match Tests.by_name test with
  | None -> Alcotest.fail "unknown test"
  | Some t ->
    let session =
      { sc.Verify.session with Engine.Session.stop_after_errors = Some 1 }
    in
    let report = Engine.Session.run session (t params) in
    report.Engine.errors <> []

let test_fault_detection_pattern () =
  (* The populated cells of the paper's Table 2. *)
  List.iter
    (fun (test, fault) ->
       Alcotest.(check bool)
         (Printf.sprintf "%s detects %s" test (Fault.to_string fault))
         true (detects test fault))
    [
      ("T1", Fault.IF1); ("T1", Fault.IF2); ("T1", Fault.IF4); ("T1", Fault.IF5);
      ("T2", Fault.IF2); ("T2", Fault.IF3); ("T2", Fault.IF5);
      ("T3", Fault.IF6);
    ];
  (* And a few of its empty cells. *)
  List.iter
    (fun (test, fault) ->
       Alcotest.(check bool)
         (Printf.sprintf "%s must miss %s" test (Fault.to_string fault))
         false (detects test fault))
    [
      ("T1", Fault.IF3); ("T1", Fault.IF6);
      ("T3", Fault.IF2); ("T3", Fault.IF5);
      ("T4", Fault.IF1); ("T5", Fault.IF6);
    ]

let test_table2_shape () =
  let sc = scenario () in
  let detections = Verify.table2 ~tests:[ "T1"; "T3" ] sc in
  (* 6 original bugs + 6 faults = 12 rows, each with 2 test columns *)
  Alcotest.(check int) "rows" 12 (List.length detections);
  List.iter
    (fun (d : Verify.detection) ->
       Alcotest.(check int) "columns" 2 (List.length d.Verify.per_test))
    detections;
  let cell bug test =
    let d =
      List.find (fun d -> Verify.bug_to_string d.Verify.bug = bug) detections
    in
    List.assoc test d.Verify.per_test
  in
  Alcotest.(check bool) "T1 finds F1" true (cell "F1" "T1" <> None);
  Alcotest.(check bool) "T3 misses F1" true (cell "F1" "T3" = None);
  Alcotest.(check bool) "T3 finds IF6" true (cell "IF6" "T3" <> None)

(* ------------------------------------------------------------------ *)
(* Independence slicing is invisible end-to-end                        *)

let test_independence_modes_agree () =
  (* Slicing is a solver-internal optimization: with it disabled the
     whole table-1 run must produce the same verdicts, error sites and
     path counts.  Caches are cleared per mode so neither run feeds
     the other. *)
  let run_mode independence =
    Smt.Solver.set_independence independence;
    Smt.Solver.clear_caches ();
    List.map
      (fun (r : Report.t) ->
         ( r.Report.test_name,
           Report.verdict_to_string r.Report.verdict,
           List.sort String.compare (sites_of r),
           r.Report.engine.Engine.paths ))
      (Verify.table1 (scenario ()))
  in
  Fun.protect
    ~finally:(fun () ->
        Smt.Solver.set_independence true;
        Smt.Solver.clear_caches ())
    (fun () ->
       let on = run_mode true in
       let off = run_mode false in
       List.iter2
         (fun (name, v_on, sites_on, paths_on) (_, v_off, sites_off, paths_off) ->
            Alcotest.(check string) (name ^ " verdict agrees") v_on v_off;
            Alcotest.(check (list string)) (name ^ " sites agree") sites_on
              sites_off;
            Alcotest.(check int) (name ^ " path count agrees") paths_on
              paths_off)
         on off)

(* ------------------------------------------------------------------ *)
(* Counterexample replay                                               *)

let test_replay_f1_counterexample () =
  let sc = scenario () in
  let params = Tests.with_faults [] sc.Verify.params in
  let r = Verify.run_test sc "T1" in
  match errors_of r with
  | [ err ] ->
    (match Engine.replay err.Error.counterexample (Tests.t1 params) with
     | Some (Ok replayed) ->
       Alcotest.(check string) "replay aborts at the same site"
         "plic:trigger:bounds" replayed.Error.site
     | Some (Error msg) -> Alcotest.failf "replay diverged: %s" msg
     | None -> Alcotest.fail "replay found no failure")
  | _ -> Alcotest.fail "expected exactly one T1 error"

(* ------------------------------------------------------------------ *)
(* Strategies agree on findings                                        *)

let test_strategies_agree_on_t1 () =
  List.iter
    (fun strategy ->
       let sc = scenario ~strategy () in
       let r = Verify.run_test sc "T1" in
       Alcotest.(check (list string))
         (Search.strategy_to_string strategy ^ " finds F1")
         [ "plic:trigger:bounds" ] (sites_of r))
    Search.all_strategies

(* ------------------------------------------------------------------ *)
(* Orchestration odds and ends                                         *)

let test_unknown_test_rejected () =
  Alcotest.check_raises "unknown name"
    (Invalid_argument "Verify.run_test: unknown test T9") (fun () ->
        ignore (Verify.run_test (scenario ()) "T9"))

let test_bug_names_roundtrip () =
  List.iter
    (fun bug ->
       match Verify.bug_of_string (Verify.bug_to_string bug) with
       | Some b ->
         Alcotest.(check string) "roundtrip" (Verify.bug_to_string bug)
           (Verify.bug_to_string b)
       | None -> Alcotest.fail "roundtrip failed")
    Verify.all_bugs

(* ------------------------------------------------------------------ *)
(* Scheduler-order exploration                                         *)

let test_order_exploration_covers_all_schedules () =
  let orders = ref [] in
  let report =
    Engine.Session.run (Engine.Session.make ()) (fun () ->
        let sched = Pk.Scheduler.create () in
        Symsysc.Order.explore_schedules sched;
        let log = ref [] in
        let mk name =
          Pk.Process.make name (fun () ->
              log := name :: !log;
              Pk.Process.Terminate)
        in
        Pk.Scheduler.spawn sched (mk "a");
        Pk.Scheduler.spawn sched (mk "b");
        Pk.Scheduler.spawn sched (mk "c");
        Pk.Scheduler.run_ready sched;
        orders := List.rev !log :: !orders)
  in
  Alcotest.(check int) "3! schedules" 6 report.Engine.paths_completed;
  Alcotest.(check int) "all distinct" 6
    (List.length (List.sort_uniq compare !orders))

let test_order_exploration_property_holds () =
  (* The PLIC's delivery outcome must not depend on the order in which
     two same-instant triggers are processed. *)
  let claims = ref [] in
  let report =
    Engine.Session.run (Engine.Session.make ()) (fun () ->
        let sched = Pk.Scheduler.create () in
        Symsysc.Order.explore_schedules sched;
        let cfg = Config.scaled ~num_sources:4 in
        let dut = Plic.create ~variant:Config.Fixed cfg sched in
        let hart = Plic.Hart.create () in
        Plic.connect_hart dut 0 hart;
        (* Two producers racing in the same evaluation phase. *)
        let trigger id =
          Pk.Process.make (Printf.sprintf "src%d" id) (fun () ->
              Plic.trigger_interrupt dut (Symex.Value.of_int id);
              Pk.Process.Terminate)
        in
        Pk.Scheduler.spawn sched (trigger 2);
        Pk.Scheduler.spawn sched (trigger 3);
        Pk.Scheduler.run_ready sched;
        Plic.set_enable_all dut;
        Plic.set_priority dut 2 (Symex.Value.of_int 5);
        Plic.set_priority dut 3 (Symex.Value.of_int 1);
        ignore (Pk.Scheduler.step sched);
        Engine.check ~site:"order:notified"
          (Smt.Expr.bool hart.Plic.Hart.was_triggered);
        (* the higher-priority source wins regardless of race order *)
        let duv = { Symsysc.Testbench.sched; dut; hart } in
        let claimed = Symsysc.Testbench.claim_interrupt duv in
        claims := claimed :: !claims;
        Engine.check ~site:"order:winner"
          (Symex.Value.eq claimed (Symex.Value.of_int 2)))
  in
  (* the initial batch holds three processes (the PLIC run thread and
     the two producers): 3! interleavings *)
  Alcotest.(check int) "all interleavings explored" 6
    report.Engine.paths_completed;
  Alcotest.(check int) "no order-dependent behaviour" 0
    (List.length report.Engine.errors)

(* ------------------------------------------------------------------ *)
(* Driver programs                                                     *)

let plic_bus () =
  let sched = Pk.Scheduler.create () in
  let cfg = Config.scaled ~num_sources:4 in
  let dut = Plic.create ~variant:Config.Fixed cfg sched in
  let hart = Plic.Hart.create () in
  Plic.connect_hart dut 0 hart;
  let bus = Tlm.Router.create ~name:"bus" () in
  Tlm.Router.add_target bus ~name:"plic" ~base:0 ~size:Config.addr_window
    (Plic.transport dut);
  Pk.Scheduler.run_ready sched;
  (sched, dut, hart, Tlm.Router.transport bus)

let test_driver_concrete_program () =
  let sched, dut, hart, bus = plic_bus () in
  let open Symsysc.Driver in
  let env =
    Symsysc.Driver.run ~sched ~bus
      [
        Write32 { addr = Config.enable_base; value = Const (-1) };
        Write32 { addr = Config.priority_base; value = Const 3 };
        Write32 { addr = Config.threshold_base; value = Const 0 };
      ]
  in
  ignore env;
  Plic.trigger_interrupt dut (Symex.Value.of_int 1);
  let env =
    Symsysc.Driver.run ~sched ~bus
      [
        Step;
        Read32 { addr = Config.claim_base; into = "claimed" };
        Check
          ( "driver:claimed-1",
            fun env ->
              Symex.Value.eq (Symsysc.Driver.get env "claimed")
                (Symex.Value.of_int 1) );
        Write32 { addr = Config.claim_base; value = Reg "claimed" };
      ]
  in
  Alcotest.(check bool) "hart notified" true hart.Plic.Hart.was_triggered;
  Alcotest.(check bool) "claimed bound" true
    (Symsysc.Driver.get env "claimed" <> Symex.Value.zero)

let test_driver_symbolic_program () =
  (* The masking property written as a driver program, split around the
     wire-side trigger and sharing one environment. *)
  let report =
    Engine.Session.run (Engine.Session.make ()) (fun () ->
        let sched, dut, hart, bus = plic_bus () in
        let open Symsysc.Driver in
        let env =
          Symsysc.Driver.run ~sched ~bus
            [
              Write32 { addr = Config.enable_base; value = Const (-1) };
              Write32 { addr = Config.priority_base; value = Sym "prio" };
              Assume
                ( "prio<=31",
                  fun env ->
                    Symex.Value.le (Symsysc.Driver.get env "prio")
                      (Symex.Value.of_int 31) );
              Write32 { addr = Config.threshold_base; value = Sym "th" };
              Assume
                ( "th<=31",
                  fun env ->
                    Symex.Value.le (Symsysc.Driver.get env "th")
                      (Symex.Value.of_int 31) );
            ]
        in
        Plic.trigger_interrupt dut (Symex.Value.of_int 1);
        ignore (Pk.Scheduler.step sched);
        if hart.Plic.Hart.was_triggered then
          ignore
            (Symsysc.Driver.run ~env ~sched ~bus
               [
                 Check
                   ( "driver:masking",
                     fun env ->
                       Smt.Expr.and_
                         (Symex.Value.ne
                            (Symsysc.Driver.get env "prio")
                            Symex.Value.zero)
                         (Symex.Value.gt
                            (Symsysc.Driver.get env "prio")
                            (Symsysc.Driver.get env "th")) );
               ]))
  in
  Alcotest.(check int) "masking holds on the fixed PLIC" 0
    (List.length report.Engine.errors)

let test_driver_repeat_and_pp () =
  let open Symsysc.Driver in
  let program =
    [
      Repeat (3, [ Write32 { addr = 0x10; value = Const 5 }; Step ]);
      Read32 { addr = 0x10; into = "x" };
    ]
  in
  let rendered = Format.asprintf "%a" Symsysc.Driver.pp_program program in
  Alcotest.(check bool) "mentions repeat" true
    (String.length rendered > 0
     && String.sub rendered 0 8 = "repeat 3")

let test_driver_error_response_flagged () =
  let sched, _, _, bus = plic_bus () in
  let open Symsysc.Driver in
  Alcotest.check_raises "unmapped access flagged"
    (Engine.Check_failed "driver:response") (fun () ->
        ignore
          (Symsysc.Driver.run ~sched ~bus
             [ Read32 { addr = 0x9999_0000; into = "x" } ]))

let test_explain_known_sites () =
  let r = report_for "T1" in
  (match errors_of r with
   | [ e ] ->
     (match Symsysc.Explain.lookup e with
      | Some ex ->
        Alcotest.(check bool) "attributed to F1" true
          (ex.Symsysc.Explain.bug = Some Verify.F1)
      | None -> Alcotest.fail "F1 must have an explanation")
   | _ -> Alcotest.fail "expected one T1 error");
  (* all paper bugs have knowledge-base entries *)
  List.iter
    (fun site ->
       let err =
         {
           Error.kind = Error.Abort;
           site;
           message = "";
           counterexample = [];
           path_id = 0;
           instructions = 0;
           found_after = 0.0;
           validated = true;
         }
       in
       Alcotest.(check bool) (site ^ " explained") true
         (Symsysc.Explain.lookup err <> None))
    [ "plic:trigger:bounds"; "reg:align"; "reg:mapping"; "reg:access";
      "reg:memcpy:read"; "reg:memcpy:write"; "plic:claim:eip" ]

let test_duration_format () =
  Alcotest.(check string) "sub-second" "0.50s" (Symsysc.Tables.format_duration 0.5);
  Alcotest.(check string) "seconds" "3s" (Symsysc.Tables.format_duration 2.2);
  Alcotest.(check string) "minutes" "2m" (Symsysc.Tables.format_duration 65.0);
  Alcotest.(check string) "hours" "24h" (Symsysc.Tables.format_duration 86400.0)

let suite =
  [
    ("table1: verdict pattern", `Slow, test_table1_verdicts);
    ("table1: T1 finds exactly F1", `Slow, test_t1_finds_f1);
    ("table1: T4 finds F2 F3 F4", `Slow, test_t4_finds_f2_f3_f4);
    ("table1: T5 finds F3 F4 F5 F6", `Slow, test_t5_finds_f3_f4_f5_f6);
    ("table1: exploration exhausts", `Slow, test_exploration_exhausts);
    ("table1: solver time dominates", `Slow, test_solver_dominates);
    ("fixed PLIC passes all tests", `Slow, test_fixed_passes_all);
    ("table2: fault detection pattern", `Slow, test_fault_detection_pattern);
    ("table2: matrix shape", `Slow, test_table2_shape);
    ("independence on/off modes agree end-to-end", `Slow,
     test_independence_modes_agree);
    ("replay: F1 counterexample reproduces", `Slow,
     test_replay_f1_counterexample);
    ("strategies agree on T1 findings", `Slow, test_strategies_agree_on_t1);
    ("order exploration: all schedules covered", `Quick,
     test_order_exploration_covers_all_schedules);
    ("order exploration: PLIC order-independent", `Quick,
     test_order_exploration_property_holds);
    ("orchestration: unknown test rejected", `Quick, test_unknown_test_rejected);
    ("orchestration: bug name roundtrip", `Quick, test_bug_names_roundtrip);
    ("orchestration: duration format", `Quick, test_duration_format);
    ("explain: known sites attributed", `Slow, test_explain_known_sites);
    ("driver: concrete program", `Quick, test_driver_concrete_program);
    ("driver: symbolic masking program", `Quick, test_driver_symbolic_program);
    ("driver: repeat and pretty-printing", `Quick, test_driver_repeat_and_pp);
    ("driver: error responses flagged", `Quick,
     test_driver_error_response_flagged);
  ]
