(* Tests for the FE310 UART model: FIFOs, transmitter timing, watermark
   interrupts, and symbolic data flow through the receive path. *)

module Expr = Smt.Expr
module Bv = Smt.Bv
module Value = Symex.Value
module Engine = Symex.Engine
module Payload = Tlm.Payload
module Sc_time = Pk.Sc_time

type rig = {
  sched : Pk.Scheduler.t;
  uart : Uart.t;
  irqs : int ref;
}

let make_rig ?policy () =
  let sched = Pk.Scheduler.create () in
  let irqs = ref 0 in
  let uart = Uart.create ?policy ~irq:(fun () -> incr irqs) sched in
  Pk.Scheduler.run_ready sched;
  { sched; uart; irqs }

let write32 rig offset value =
  let p =
    Payload.make_write32 ~addr:(Value.of_int offset) ~value:(Value.of_int value)
  in
  ignore (Uart.transport rig.uart p Sc_time.zero)

let read32 rig offset =
  let p =
    Payload.make_read ~addr:(Value.of_int offset) ~len:(Value.of_int 4)
  in
  ignore (Uart.transport rig.uart p Sc_time.zero);
  match Expr.to_bv (Payload.data32 p) with
  | Some v -> Int64.to_int (Bv.to_int64 v)
  | None -> Alcotest.fail "expected concrete read"

let run_for rig time = Pk.Scheduler.run_until rig.sched time

(* one 8N1 frame at div = d takes (d+1)*10 clock ticks of 10 ns *)
let frame_ns div = (div + 1) * 10 * 10

let test_tx_transmits_in_order () =
  let rig = make_rig () in
  write32 rig Uart.div_base 0;
  write32 rig Uart.txctrl_base 1;
  write32 rig Uart.txdata_base 0x41;
  write32 rig Uart.txdata_base 0x42;
  write32 rig Uart.txdata_base 0x43;
  run_for rig (Sc_time.us 10);
  let sent =
    List.map
      (fun b ->
         match Expr.to_bv b with
         | Some v -> Int64.to_int (Bv.to_int64 v)
         | None -> Alcotest.fail "expected concrete byte")
      (Uart.transmitted rig.uart)
  in
  Alcotest.(check (list int)) "in order" [ 0x41; 0x42; 0x43 ] sent;
  Alcotest.(check int) "fifo drained" 0 (Uart.tx_level rig.uart)

let test_tx_respects_baud () =
  let rig = make_rig () in
  write32 rig Uart.div_base 3;
  write32 rig Uart.txctrl_base 1;
  write32 rig Uart.txdata_base 0x55;
  (* just before one frame time: not yet out *)
  run_for rig (Sc_time.ns (frame_ns 3 - 10));
  Alcotest.(check int) "still shifting" 0
    (List.length (Uart.transmitted rig.uart));
  run_for rig (Sc_time.ns (frame_ns 3));
  Alcotest.(check int) "one frame later" 1
    (List.length (Uart.transmitted rig.uart))

let test_tx_disabled_holds () =
  let rig = make_rig () in
  write32 rig Uart.txdata_base 0x11;
  run_for rig (Sc_time.us 10);
  Alcotest.(check int) "txen off: nothing sent" 0
    (List.length (Uart.transmitted rig.uart));
  Alcotest.(check int) "byte still queued" 1 (Uart.tx_level rig.uart);
  write32 rig Uart.txctrl_base 1;
  run_for rig (Sc_time.us 20);
  Alcotest.(check int) "drains after enable" 1
    (List.length (Uart.transmitted rig.uart))

let test_tx_fifo_full_drops () =
  let rig = make_rig () in
  for i = 1 to Uart.fifo_depth + 2 do
    write32 rig Uart.txdata_base i
  done;
  Alcotest.(check int) "capped at depth" Uart.fifo_depth
    (Uart.tx_level rig.uart);
  Alcotest.(check bool) "full flag set" true
    (read32 rig Uart.txdata_base land 0x8000_0000 <> 0)

let test_rx_read_dequeues () =
  let rig = make_rig () in
  Uart.receive_byte rig.uart (Value.of_int 0x7A);
  Alcotest.(check int) "level 1" 1 (Uart.rx_level rig.uart);
  Alcotest.(check int) "byte delivered" 0x7A (read32 rig Uart.rxdata_base);
  Alcotest.(check int) "empty flag afterwards" 0x8000_0000
    (read32 rig Uart.rxdata_base)

let test_rx_overflow_drops () =
  let rig = make_rig () in
  for i = 1 to Uart.fifo_depth + 3 do
    Uart.receive_byte rig.uart (Value.of_int i)
  done;
  Alcotest.(check int) "capped" Uart.fifo_depth (Uart.rx_level rig.uart);
  Alcotest.(check int) "oldest byte survives" 1 (read32 rig Uart.rxdata_base)

let test_rx_watermark_interrupt () =
  let rig = make_rig () in
  (* rxwm = 1, rx interrupt enabled: pending while level > 1 *)
  write32 rig Uart.rxctrl_base ((1 lsl 16) lor 1);
  write32 rig Uart.ie_base 2;
  Uart.receive_byte rig.uart (Value.of_int 0xAA);
  Alcotest.(check bool) "level 1: below watermark" false
    (Uart.interrupt_line rig.uart);
  Uart.receive_byte rig.uart (Value.of_int 0xBB);
  Alcotest.(check bool) "level 2: above watermark" true
    (Uart.interrupt_line rig.uart);
  Alcotest.(check int) "one rising edge" 1 !(rig.irqs);
  (* draining below the watermark clears the level *)
  ignore (read32 rig Uart.rxdata_base);
  Alcotest.(check bool) "cleared" false (Uart.interrupt_line rig.uart)

let test_tx_watermark_interrupt () =
  let rig = make_rig () in
  (* txwm = 2: pending while TX level < 2 (i.e. room to refill) *)
  write32 rig Uart.txctrl_base ((2 lsl 16) lor 1);
  write32 rig Uart.ie_base 1;
  Alcotest.(check bool) "empty fifo is below watermark" true
    (Uart.interrupt_line rig.uart);
  write32 rig Uart.txdata_base 1;
  write32 rig Uart.txdata_base 2;
  write32 rig Uart.txdata_base 3;
  Alcotest.(check bool) "filled above watermark" false
    (Uart.interrupt_line rig.uart);
  run_for rig (Sc_time.us 10);
  Alcotest.(check bool) "re-asserted after drain" true
    (Uart.interrupt_line rig.uart);
  Alcotest.(check bool) "two rising edges" true (!(rig.irqs) >= 2)

let test_ip_register () =
  let rig = make_rig () in
  write32 rig Uart.rxctrl_base 1; (* rxwm = 0: pending when level > 0 *)
  Uart.receive_byte rig.uart (Value.of_int 1);
  let ip = read32 rig Uart.ip_base in
  Alcotest.(check int) "rxwm pending bit" 2 (ip land 2);
  (* txwm = 0 means TX is never below its watermark *)
  Alcotest.(check int) "txwm not pending" 0 (ip land 1)

let test_ip_read_only () =
  let rig = make_rig () in
  let p =
    Payload.make_write32 ~addr:(Value.of_int Uart.ip_base)
      ~value:(Value.of_int 3)
  in
  ignore (Uart.transport rig.uart p Sc_time.zero);
  Alcotest.(check bool) "rejected" true
    (p.Payload.response = Payload.Command_error)

let test_symbolic_loopback () =
  (* Whatever symbolic byte arrives must be read back identically. *)
  let report =
    Engine.Session.run (Engine.Session.make ()) (fun () ->
        let sched = Pk.Scheduler.create () in
        let uart = Uart.create sched in
        Pk.Scheduler.run_ready sched;
        let data = Engine.fresh "rx_byte" 32 in
        Engine.assume (Value.le data (Value.of_int 0xFF));
        Uart.receive_byte uart data;
        let p =
          Payload.make_read
            ~addr:(Value.of_int Uart.rxdata_base)
            ~len:(Value.of_int 4)
        in
        ignore (Uart.transport uart p Sc_time.zero);
        Engine.check ~site:"uart:loopback" ~message:"byte corrupted"
          (Value.eq (Payload.data32 p) data))
  in
  Alcotest.(check int) "no corruption" 0 (List.length report.Engine.errors)

let test_symbolic_watermark_property () =
  (* For every watermark, the rx interrupt is pending iff level > wm. *)
  let report =
    Engine.Session.run (Engine.Session.make ()) (fun () ->
        let sched = Pk.Scheduler.create () in
        let uart = Uart.create sched in
        Pk.Scheduler.run_ready sched;
        let wm = Engine.fresh "rxwm" 32 in
        Engine.assume (Value.le wm (Value.of_int 7));
        let ctrl = Value.bor (Value.shl wm (Value.of_int 16)) Value.one in
        let p =
          Payload.make_write32 ~addr:(Value.of_int Uart.rxctrl_base)
            ~value:ctrl
        in
        ignore (Uart.transport uart p Sc_time.zero);
        let pie =
          Payload.make_write32 ~addr:(Value.of_int Uart.ie_base)
            ~value:(Value.of_int 2)
        in
        ignore (Uart.transport uart pie Sc_time.zero);
        for i = 1 to 3 do
          Uart.receive_byte uart (Value.of_int i)
        done;
        let expected = Engine.branch (Value.lt wm (Value.of_int 3)) in
        Engine.check ~site:"uart:wm-property"
          ~message:"interrupt line disagrees with the watermark rule"
          (Expr.bool (Uart.interrupt_line uart = expected)))
  in
  Alcotest.(check int) "property holds for all watermarks" 0
    (List.length report.Engine.errors)

let test_original_policy_applies () =
  let rig = make_rig ~policy:Tlm.Register.Original () in
  let p = Payload.make_read ~addr:(Value.of_int 0x2) ~len:(Value.of_int 4) in
  Alcotest.check_raises "misaligned read aborts"
    (Engine.Check_failed "reg:align") (fun () ->
        ignore (Uart.transport rig.uart p Sc_time.zero))

let suite =
  [
    ("tx: transmits in order", `Quick, test_tx_transmits_in_order);
    ("tx: respects the baud divider", `Quick, test_tx_respects_baud);
    ("tx: disabled transmitter holds", `Quick, test_tx_disabled_holds);
    ("tx: full fifo drops writes", `Quick, test_tx_fifo_full_drops);
    ("rx: read dequeues", `Quick, test_rx_read_dequeues);
    ("rx: overflow drops", `Quick, test_rx_overflow_drops);
    ("irq: rx watermark", `Quick, test_rx_watermark_interrupt);
    ("irq: tx watermark", `Quick, test_tx_watermark_interrupt);
    ("ip: reflects pendings", `Quick, test_ip_register);
    ("ip: read-only", `Quick, test_ip_read_only);
    ("symbolic: loopback integrity", `Quick, test_symbolic_loopback);
    ("symbolic: watermark property", `Quick, test_symbolic_watermark_property);
    ("original register policy applies", `Quick, test_original_policy_applies);
  ]
