(* Pk.Trace — the VCD waveform writer: identical-value collapsing,
   multi-width signals, non-decreasing-time enforcement and a
   golden-file check of the emitted VCD text. *)

module Trace = Pk.Trace
module Sc_time = Pk.Sc_time

let test_identical_value_collapsing () =
  let tr = Trace.create ~name:"collapse" () in
  let s = Trace.signal tr "sig" in
  Trace.change tr s (Sc_time.ns 1) 1L;
  Trace.change tr s (Sc_time.ns 2) 1L;   (* same value: collapsed *)
  Trace.change tr s (Sc_time.ns 3) 1L;   (* same value: collapsed *)
  Trace.change tr s (Sc_time.ns 4) 0L;
  Trace.change tr s (Sc_time.ns 5) 0L;   (* same value: collapsed *)
  let vcd = Trace.to_vcd tr in
  let value_lines =
    String.split_on_char '\n' vcd
    |> List.filter (fun l ->
        String.length l > 0 && (l.[0] = '0' || l.[0] = '1'))
  in
  Alcotest.(check int) "only two value changes survive" 2
    (List.length value_lines)

let test_multi_width_signals () =
  let tr = Trace.create ~name:"widths" () in
  let bit = Trace.signal tr "bit" in
  let bus = Trace.signal tr ~width:8 "bus" in
  let wide = Trace.signal tr ~width:64 "wide" in
  Trace.change_bool tr bit Sc_time.zero true;
  Trace.change tr bus Sc_time.zero 0xA5L;
  Trace.change tr wide Sc_time.zero Int64.min_int;
  let vcd = Trace.to_vcd tr in
  let lines = String.split_on_char '\n' vcd in
  let has l = Alcotest.(check bool) l true (List.mem l lines) in
  has "$var wire 1 ! bit $end";
  has "$var wire 8 \" bus $end";
  has "$var wire 64 # wide $end";
  has "1!";
  has "b10100101 \"";
  has ("b1" ^ String.make 63 '0' ^ " #");
  (* Widths outside 1..64 are rejected at declaration. *)
  Alcotest.check_raises "width 0 rejected"
    (Invalid_argument "Trace.signal: width in 1..64") (fun () ->
        ignore (Trace.signal tr ~width:0 "bad"));
  Alcotest.check_raises "width 65 rejected"
    (Invalid_argument "Trace.signal: width in 1..64") (fun () ->
        ignore (Trace.signal tr ~width:65 "bad"))

let test_time_monotonicity () =
  let tr = Trace.create ~name:"mono" () in
  let s = Trace.signal tr "sig" in
  Trace.change tr s (Sc_time.ns 10) 1L;
  (* Equal time is allowed (delta-cycle updates)... *)
  Trace.change tr s (Sc_time.ns 10) 0L;
  (* ...but going backwards is not. *)
  Alcotest.check_raises "backwards time rejected"
    (Invalid_argument "Trace.change: time going backwards") (fun () ->
        Trace.change tr s (Sc_time.ns 9) 1L);
  (* The failed change must not have been recorded. *)
  let vcd = Trace.to_vcd tr in
  Alcotest.(check bool) "no #9000 section" false
    (List.mem "#9000" (String.split_on_char '\n' vcd))

let test_golden_vcd () =
  let tr = Trace.create ~timescale:"1ps" ~name:"golden" () in
  let clk = Trace.signal tr "clk" in
  let data = Trace.signal tr ~width:4 "data" in
  Trace.change tr clk Sc_time.zero 0L;
  Trace.change tr data Sc_time.zero 3L;
  Trace.change tr clk (Sc_time.ns 1) 1L;
  Trace.change tr data (Sc_time.ns 1) 3L;   (* collapsed *)
  Trace.change tr clk (Sc_time.ns 2) 0L;
  Trace.change tr data (Sc_time.ns 2) 12L;
  let expected =
    "$comment golden $end\n\
     $timescale 1ps $end\n\
     $scope module golden $end\n\
     $var wire 1 ! clk $end\n\
     $var wire 4 \" data $end\n\
     $upscope $end\n\
     $enddefinitions $end\n\
     #0\n\
     0!\n\
     b0011 \"\n\
     #1000\n\
     1!\n\
     #2000\n\
     0!\n\
     b1100 \"\n"
  in
  Alcotest.(check string) "golden VCD" expected (Trace.to_vcd tr)

let test_save_roundtrip () =
  let tr = Trace.create ~name:"saved" () in
  let s = Trace.signal tr "sig" in
  Trace.change tr s Sc_time.zero 1L;
  let path = Filename.temp_file "symsysc_trace" ".vcd" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
       Trace.save tr path;
       let ic = open_in path in
       let len = in_channel_length ic in
       let contents = really_input_string ic len in
       close_in ic;
       Alcotest.(check string) "file matches to_vcd" (Trace.to_vcd tr)
         contents)

let suite =
  [
    ("collapsing: identical values", `Quick, test_identical_value_collapsing);
    ("multi-width signals", `Quick, test_multi_width_signals);
    ("time monotonicity", `Quick, test_time_monotonicity);
    ("golden to_vcd", `Quick, test_golden_vcd);
    ("save round-trip", `Quick, test_save_roundtrip);
  ]
