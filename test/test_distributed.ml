(* Distributed exploration tests.

   The socket transport promises exactly what the pipe transport does:
   a campaign spread over remote TCP worker pools reaches the same
   verdict, path totals and bug sites as the sequential run — and
   keeps doing so when a worker pool is SIGKILLed mid-campaign, when a
   pool drains on SIGTERM, when leases expire on a slow holder, and
   under injected network faults (dropped connections, stalled and
   sheared frames, duplicated results).  On top of the end-to-end
   equivalences: the pure reconnect-backoff schedule, the framing and
   EPIPE normalization of the transport, the first-result-wins lease
   bookkeeping, and lease-carrying checkpoints crossing between the
   sequential and distributed engines. *)

module Engine = Symex.Engine
module Search = Symex.Search
module Decision = Symex.Decision
module Checkpoint = Symex.Checkpoint
module Transport = Symex.Transport
module Lease = Symex.Lease
module Pool = Symex.Pool
module Expr = Smt.Expr
module Verify = Symsysc.Verify
module Report = Symsysc.Report

let scenario ?strategy ?workers ?listen ?lease_ms () =
  Verify.scenario ~num_sources:4 ~t5_max_len:8 ?strategy ?workers ?listen
    ?lease_ms ()

let fingerprint (r : Report.t) =
  let e = r.Report.engine in
  ( r.Report.verdict,
    e.Engine.paths,
    e.Engine.paths_completed,
    e.Engine.paths_errored,
    e.Engine.paths_infeasible,
    e.Engine.paths_unknown,
    e.Engine.instructions,
    e.Engine.exhausted,
    List.sort_uniq compare
      (List.map
         (fun (err : Symex.Error.t) ->
            (err.Symex.Error.site, Symex.Error.kind_to_string err.Symex.Error.kind))
         e.Engine.errors) )

(* ------------------------------------------------------------------ *)
(* Reconnect backoff                                                   *)

let test_backoff_schedule () =
  (* Pure: the same (seed, attempt) always yields the same delay. *)
  for attempt = 1 to 20 do
    Alcotest.(check (float 0.0))
      (Printf.sprintf "attempt %d reproducible" attempt)
      (Transport.backoff_delay ~seed:7 ~attempt)
      (Transport.backoff_delay ~seed:7 ~attempt)
  done;
  (* Bounded: positive, never above the cap, and below the exponential
     ceiling for early attempts. *)
  List.iter
    (fun seed ->
       for attempt = 1 to 40 do
         let d = Transport.backoff_delay ~seed ~attempt in
         Alcotest.(check bool) "positive" true (d > 0.0);
         Alcotest.(check bool) "capped" true (d <= Transport.backoff_cap_s);
         if attempt <= 3 then
           Alcotest.(check bool) "under the exponential ceiling" true
             (d <= 0.05 *. (2.0 ** float_of_int (attempt - 1)) +. 1e-9)
       done)
    [ 0; 1; 42; 123456 ];
  (* Jittered: distinct seeds desynchronize (at least one attempt in a
     small window must differ — equality everywhere would mean the
     jitter stream ignores the seed). *)
  let schedule seed =
    List.init 8 (fun i -> Transport.backoff_delay ~seed ~attempt:(i + 1))
  in
  Alcotest.(check bool) "seeds produce distinct schedules" true
    (schedule 1 <> schedule 2)

(* ------------------------------------------------------------------ *)
(* Transport framing and EPIPE normalization                           *)

let test_frame_roundtrip_socketpair () =
  Transport.init ();
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let ca = { Transport.c_in = a; c_out = a; c_kind = Transport.Tcp;
             c_addr = "a" }
  and cb = { Transport.c_in = b; c_out = b; c_kind = Transport.Tcp;
             c_addr = "b" } in
  let msg =
    Obs.Json.Obj
      [ ("cmd", Obs.Json.Str "unit");
        ("id", Obs.Json.Int 42);
        ("prefix", Obs.Json.List [ Obs.Json.Bool true ]) ]
  in
  Transport.write_frame ca msg;
  let got = Transport.read_frame cb in
  Alcotest.(check string) "frame round-trips over a socket"
    (Obs.Json.to_string msg) (Obs.Json.to_string got);
  Transport.close ca;
  Transport.close cb

(* Satellite pin: a write to a peer that closed its end must surface as
   Transport.Disconnected (the worker-death path), not as a SIGPIPE
   kill or a raw Unix_error. *)
let test_write_to_closed_peer_is_disconnected () =
  Transport.init ();
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let ca = { Transport.c_in = a; c_out = a; c_kind = Transport.Tcp;
             c_addr = "a" } in
  Unix.close b;
  let payload = Obs.Json.Str (String.make 65536 'x') in
  let disconnected =
    (* The first write may land in the socket buffer; keep writing
       until the kernel reports the peer is gone. *)
    try
      for _ = 1 to 64 do Transport.write_frame ca payload done;
      false
    with
    | Transport.Disconnected _ -> true
    | Unix.Unix_error _ -> false
  in
  Transport.close ca;
  Alcotest.(check bool) "EPIPE/ECONNRESET normalized to Disconnected" true
    disconnected;
  (* And reading from a closed peer is Disconnected too (EOF shape). *)
  let c, d = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.close d;
  let cc = { Transport.c_in = c; c_out = c; c_kind = Transport.Tcp;
             c_addr = "c" } in
  let eof =
    try ignore (Transport.read_frame cc); false
    with Transport.Disconnected _ -> true
  in
  Transport.close cc;
  Alcotest.(check bool) "EOF normalized to Disconnected" true eof

(* ------------------------------------------------------------------ *)
(* Lease bookkeeping                                                   *)

let test_lease_first_result_wins () =
  let t = Lease.create ~lease_ms:(Some 50) in
  let e = Lease.make_entry t ~id:1 ~site:"s" ~prefix:[||] ~now:100.0 in
  Alcotest.(check int) "first grant is attempt 1" 1 e.Lease.l_attempts;
  Alcotest.(check bool) "not yet expired" false
    (Lease.expired e ~now:100.04);
  Alcotest.(check bool) "expired past the deadline" true
    (Lease.expired e ~now:100.06);
  Lease.renew t e ~now:100.06;
  Alcotest.(check bool) "renewal pushes the deadline out" false
    (Lease.expired e ~now:100.10);
  (* Expiry requeues; regrant bumps attempts. *)
  Lease.requeue t e;
  Alcotest.(check int) "one pending regrant" 1 (Lease.pending t);
  (match Lease.take_pending t with
   | None -> Alcotest.fail "pending entry vanished"
   | Some e' ->
     let e' = Lease.regrant t e' ~now:200.0 in
     Alcotest.(check int) "regrant is attempt 2" 2 e'.Lease.l_attempts);
  (* First result settles; the second is a counted duplicate. *)
  Alcotest.(check bool) "first settle is fresh" true
    (Lease.settle t 1 = `Fresh);
  Alcotest.(check bool) "second settle is a duplicate" true
    (Lease.settle t 1 = `Duplicate);
  Alcotest.(check bool) "settled is settled" true (Lease.is_settled t 1)

let test_lease_settle_drops_pending_copy () =
  let t = Lease.create ~lease_ms:None in
  let e = Lease.make_entry t ~id:7 ~site:"s" ~prefix:[||] ~now:0.0 in
  Alcotest.(check bool) "no deadline means no expiry" false
    (Lease.expired e ~now:1e12);
  (* The unit expired and was requeued — then the original holder's
     result arrived before the regrant was dispatched.  The pending
     copy must be dropped, or the path would be explored twice. *)
  Lease.requeue t e;
  Alcotest.(check bool) "settles fresh" true (Lease.settle t 7 = `Fresh);
  Alcotest.(check int) "pending copy dropped by settle" 0 (Lease.pending t);
  Alcotest.(check bool) "take_pending agrees" true
    (Lease.take_pending t = None)

(* ------------------------------------------------------------------ *)
(* Loopback-TCP equivalence                                            *)

(* Run [name] distributed: a listening master with no local workers,
   plus remote worker pools forked as child processes (each dialing the
   master's loopback port).  [kill_after] SIGKILLs the first pool
   mid-campaign; [drain_after] SIGTERMs it instead.  Returns the
   master's report and the non-killed pools' exit codes. *)
let run_distributed ?(pools = [ 2 ]) ?kill_after ?drain_after ?local_workers
    ~strategy name =
  let l = Transport.listen ~host:"127.0.0.1" ~port:0 () in
  let _, port = Transport.listener_addr l in
  flush stdout;
  flush stderr;
  let kids =
    List.mapi
      (fun slot w ->
         match Unix.fork () with
         | 0 ->
           Unix.close (Transport.listener_fd l);
           Obs.Progress.disable ();
           Obs.Sink.reset ();
           let code =
             try
               Verify.serve ~host:"127.0.0.1" ~port ~workers:w
                 ~backoff_seed:(slot + 1)
                 (scenario ~strategy ()) name
             with _ -> 1
           in
           Unix._exit code
         | pid -> pid)
      pools
  in
  let disturber =
    let signal_first signal delay =
      match Unix.fork () with
      | 0 ->
        Unix.close (Transport.listener_fd l);
        Unix.sleepf delay;
        (try Unix.kill (List.hd kids) signal with Unix.Unix_error _ -> ());
        Unix._exit 0
      | pid -> Some pid
    in
    match kill_after, drain_after with
    | Some d, _ -> signal_first Sys.sigkill d
    | None, Some d -> signal_first Sys.sigterm d
    | None, None -> None
  in
  let workers = match local_workers with Some w -> w | None -> 0 in
  let sc = scenario ~strategy ~workers ~listen:l ~lease_ms:2000 () in
  let report = Verify.run_test sc name in
  Transport.close_listener l;
  let codes =
    List.mapi
      (fun i pid ->
         match Unix.waitpid [] pid with
         | _, Unix.WEXITED c -> Some (i, c)
         | _, _ -> None
         | exception Unix.Unix_error _ -> None)
      kids
    |> List.filter_map Fun.id
  in
  Option.iter (fun pid -> ignore (Unix.waitpid [] pid)) disturber;
  (report, codes)

let strategies =
  [ ("dfs", Search.Dfs);
    ("bfs", Search.Bfs);
    ("random", Search.Random_path 42);
    ("cover-new", Search.Cover_new) ]

let tests = [ "t1"; "t2"; "t3"; "t4"; "t5" ]

let check_tcp_equiv strategy name () =
  let seq = Verify.run_test (scenario ~strategy ()) name in
  let dist, codes = run_distributed ~pools:[ 2 ] ~strategy name in
  List.iter
    (fun (i, c) ->
       Alcotest.(check int) (Printf.sprintf "pool %d exited cleanly" i) 0 c)
    codes;
  Alcotest.(check bool) "TCP fingerprint equals sequential" true
    (fingerprint dist = fingerprint seq)

let tcp_equiv_cases =
  List.concat_map
    (fun (sname, strategy) ->
       List.map
         (fun name ->
            ( Printf.sprintf "tcp equivalence: %s/%s" sname name,
              `Slow,
              check_tcp_equiv strategy name ))
         tests)
    strategies

(* A remote worker pool SIGKILLed mid-campaign: its lease is requeued
   (by death detection or lease expiry) and the surviving pool finishes
   the campaign with an unchanged fingerprint. *)
let test_kill_one_pool_equiv () =
  let seq = Verify.run_test (scenario ~strategy:Search.Dfs ()) "t4" in
  let dist, codes =
    run_distributed ~pools:[ 1; 1 ] ~kill_after:0.2 ~strategy:Search.Dfs "t4"
  in
  (* The survivor (and the victim, if the campaign beat the killer to
     it) must exit cleanly. *)
  Alcotest.(check bool) "at least the surviving pool exited cleanly" true
    (List.exists (fun (_, c) -> c = 0) codes);
  Alcotest.(check bool) "fingerprint survives a SIGKILLed worker pool" true
    (fingerprint dist = fingerprint seq)

(* SIGTERM drains a pool gracefully: current unit flushed, bye sent, no
   worker-death panic, campaign completes on the remaining peers. *)
let test_sigterm_drain () =
  let seq = Verify.run_test (scenario ~strategy:Search.Dfs ()) "t3" in
  let dist, codes =
    run_distributed ~pools:[ 1; 1 ] ~drain_after:0.2 ~strategy:Search.Dfs "t3"
  in
  List.iter
    (fun (i, c) ->
       Alcotest.(check int)
         (Printf.sprintf "pool %d exited cleanly after drain" i) 0 c)
    codes;
  Alcotest.(check bool) "fingerprint survives a drained worker pool" true
    (fingerprint dist = fingerprint seq)

(* A mismatched parameter fingerprint must be rejected in the handshake
   (terminal for the worker), not silently merged. *)
let test_cookie_mismatch_rejected () =
  let l = Transport.listen ~host:"127.0.0.1" ~port:0 () in
  let _, port = Transport.listener_addr l in
  flush stdout;
  flush stderr;
  let kid =
    match Unix.fork () with
    | 0 ->
      Unix.close (Transport.listener_fd l);
      Obs.Progress.disable ();
      Obs.Sink.reset ();
      let exec ~prefix:_ =
        { Pool.outcome = Pool.Unit_completed; forks = []; errors = [];
          visits = []; instructions = 0; degraded = false;
          solver = Smt.Solver.Stats.zero; requeue = None; chaos = [];
          coverage = Obs.Coverage.zero; profile = Obs.Profile.zero;
          events = []; events_dropped = 0;
    snapshots_taken = 0; snapshot_restores = 0; replay_fallbacks = 0;
    instructions_saved = 0 }
      in
      let code =
        try
          Pool.serve ~host:"127.0.0.1" ~port ~workers:1 ~label:"t1"
            ~strategy:Search.Dfs ~cookie:"not-the-master's-parameters"
            ~max_dials:5 ~exec ()
        with _ -> 1
      in
      Unix._exit code
    | pid -> pid
  in
  (* The master runs with one local worker, so the rejected remote costs
     it nothing. *)
  let sc =
    scenario ~strategy:Search.Dfs ~workers:1 ~listen:l ~lease_ms:2000 ()
  in
  let seq = Verify.run_test (scenario ~strategy:Search.Dfs ()) "t1" in
  let dist = Verify.run_test sc "t1" in
  Transport.close_listener l;
  let code =
    match Unix.waitpid [] kid with
    | _, Unix.WEXITED c -> c
    | _, _ -> -1
  in
  Alcotest.(check int) "mismatched worker exits with failure" 1 code;
  Alcotest.(check bool) "master's campaign is unaffected" true
    (fingerprint dist = fingerprint seq)

(* ------------------------------------------------------------------ *)
(* Lease expiry on a slow holder                                       *)

let unit_ok ?(forks = []) () =
  { Pool.outcome = Pool.Unit_completed; forks; errors = []; visits = [];
    instructions = 1; degraded = false; solver = Smt.Solver.Stats.zero;
    requeue = None; chaos = [];
    coverage = Obs.Coverage.zero; profile = Obs.Profile.zero;
    events = []; events_dropped = 0;
    snapshots_taken = 0; snapshot_restores = 0; replay_fallbacks = 0;
    instructions_saved = 0 }

(* A unit whose first execution outlives its lease is re-granted to
   another worker — without killing the slow holder, and without the
   path being counted twice when both copies eventually report. *)
let test_lease_expiry_regrants () =
  let flag = Filename.temp_file "symsysc_slow" ".flag" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove flag with Sys_error _ -> ())
    (fun () ->
       let config =
         { Pool.workers = 2; strategy = Search.Dfs;
           limits = Engine.no_limits; stop_after_errors = None;
           label = "lease-test"; heartbeat_ms = None; max_unit_crashes = 3;
           listen = None; lease_ms = Some 100; cookie = None }
       in
       let exec ~prefix =
         match Array.to_list prefix with
         | [] ->
           unit_ok
             ~forks:
               [ ("root", [| Decision.Dir false |]);
                 ("root", [| Decision.Dir true |]) ]
             ()
         | [ Decision.Dir true ] when Sys.file_exists flag ->
           (* Slow only on the first execution: the regrant (and any
              re-run) completes immediately. *)
           (try Sys.remove flag with Sys_error _ -> ());
           Unix.sleepf 0.8;
           unit_ok ()
         | _ -> unit_ok ()
       in
       let r = Pool.run config ~exec () in
       Alcotest.(check bool) "the slow unit's lease expired" true
         (r.Pool.r_lease_expired >= 1);
       Alcotest.(check bool) "expiry requeued, not killed" true
         (r.Pool.r_requeued >= 1);
       Alcotest.(check int) "no worker death" 0 r.Pool.r_worker_deaths;
       Alcotest.(check int) "logical path count unaffected" 3 r.Pool.r_paths;
       Alcotest.(check int) "every unit completed exactly once" 3
         r.Pool.r_completed;
       Alcotest.(check bool) "run still counts as exhaustive" true
         r.Pool.r_exhausted)

(* ------------------------------------------------------------------ *)
(* Network chaos: campaign fingerprints survive injected faults        *)

let network_chaos_spec =
  match
    Chaos.parse_spec "conn-drop:0.05,conn-stall:0.03,frame-shear:0.04,\
                      dup-result:0.1"
  with
  | Ok spec -> spec
  | Error msg -> failwith msg

let check_network_chaos workers name () =
  let clean = Verify.run_test (scenario ~strategy:Search.Dfs ()) name in
  Fun.protect ~finally:Chaos.disable (fun () ->
      Chaos.configure ~seed:23 network_chaos_spec;
      let faulty =
        Verify.run_test
          (scenario ~strategy:Search.Dfs ~workers ()) name
      in
      Alcotest.(check bool)
        (Printf.sprintf
           "fingerprint with network chaos at %d workers equals clean"
           workers)
        true
        (fingerprint faulty = fingerprint clean))

let network_chaos_cases =
  List.concat_map
    (fun workers ->
       List.map
         (fun name ->
            ( Printf.sprintf "network chaos equivalence: %d workers/%s"
                workers name,
              `Slow,
              check_network_chaos workers name ))
         tests)
    [ 1; 4 ]

(* ------------------------------------------------------------------ *)
(* Lease-carrying checkpoints cross engine boundaries                  *)

let e1 v = Expr.int ~width:1 v

let lease_body () =
  let x = Engine.fresh "x" 1 in
  if Engine.branch ~site:"bit" (Expr.eq x (e1 0)) then () else ()

let blank_lease_checkpoint ~label ~leases =
  { Checkpoint.label;
    strategy = "dfs";
    frontier = [];
    leases;
    visits = [];
    rng = Search.rng_state (Search.create Search.Dfs);
    paths = 0;
    completed = 0;
    errored = 0;
    infeasible = 0;
    unknown = 0;
    instructions = 0;
    wall_time = 0.0;
    solver = Smt.Solver.Stats.zero;
    errors = [];
    degraded = false;
    stop_reason = None }

(* A checkpoint whose only content is an in-flight lease (say, written
   by a master that died right after dispatch) resumes sequentially:
   the leased prefix is re-executed as an ordinary frontier entry. *)
let test_seq_resume_of_lease_checkpoint () =
  let full =
    Engine.Session.run ~label:"lease-ck" (Engine.Session.make ()) lease_body
  in
  let ck =
    blank_lease_checkpoint ~label:"lease-ck" ~leases:[ ("root", [||], 2) ]
  in
  let resumed =
    Engine.Session.run ~label:"lease-ck"
      (Engine.Session.make ~resume:ck ())
      lease_body
  in
  Alcotest.(check int) "leased root re-explores the whole tree"
    full.Engine.paths resumed.Engine.paths;
  Alcotest.(check int) "completions match" full.Engine.paths_completed
    resumed.Engine.paths_completed;
  Alcotest.(check bool) "resumed run exhausts" true resumed.Engine.exhausted

(* And the pool resumes the same checkpoint by re-granting the lease
   (attempt count preserved for quarantine accounting). *)
let test_pool_resume_of_lease_checkpoint () =
  let config =
    { Pool.workers = 2; strategy = Search.Dfs; limits = Engine.no_limits;
      stop_after_errors = None; label = "lease-ck"; heartbeat_ms = None;
      max_unit_crashes = 3; listen = None; lease_ms = None; cookie = None }
  in
  let exec ~prefix =
    match Array.to_list prefix with
    | [] ->
      unit_ok
        ~forks:
          [ ("bit", [| Decision.Dir false |]);
            ("bit", [| Decision.Dir true |]) ]
        ()
    | _ -> unit_ok ()
  in
  let ck =
    blank_lease_checkpoint ~label:"lease-ck" ~leases:[ ("root", [||], 2) ]
  in
  let r = Pool.run config ~resume:ck ~exec () in
  Alcotest.(check int) "all three units completed" 3 r.Pool.r_completed;
  Alcotest.(check int) "path count restored from the lease" 3 r.Pool.r_paths;
  Alcotest.(check bool) "run exhausts" true r.Pool.r_exhausted

(* A pool checkpoint taken mid-run records granted-but-unsettled units
   in [leases]; resuming it (at any worker count) loses nothing. *)
let test_pool_checkpoint_resume_roundtrip () =
  let sc = scenario ~strategy:Search.Dfs ~workers:2 () in
  let straight = Verify.run_test sc "t4" in
  let saved = ref None in
  let policy =
    { Checkpoint.write = (fun ck -> saved := Some ck); every_s = infinity }
  in
  let truncated_sc =
    { sc with
      Verify.session =
        { sc.Verify.session with
          Engine.Session.limits =
            { Engine.no_limits with Engine.max_paths = Some 5 };
          checkpoint = Some policy } }
  in
  let truncated = Verify.run_test truncated_sc "t4" in
  Alcotest.(check bool) "truncated run stopped early" true
    (truncated.Report.engine.Engine.stop_reason <> None);
  match !saved with
  | None -> Alcotest.fail "no checkpoint written"
  | Some ck ->
    let resumed_sc =
      { (scenario ~strategy:Search.Dfs ~workers:4 ()) with
        Verify.session =
          { (scenario ~strategy:Search.Dfs ~workers:4 ()).Verify.session with
            Engine.Session.resume = Some ck } }
    in
    let resumed = Verify.run_test resumed_sc "t4" in
    Alcotest.(check bool) "resumed fingerprint equals uninterrupted" true
      (fingerprint resumed = fingerprint straight)

let suite =
  [ ("backoff: pure, capped, seeded schedule", `Quick, test_backoff_schedule);
    ("transport: frame round-trip over a socket", `Quick,
     test_frame_roundtrip_socketpair);
    ("transport: dead peer raises Disconnected (EPIPE pin)", `Quick,
     test_write_to_closed_peer_is_disconnected);
    ("lease: first-result-wins settle", `Quick, test_lease_first_result_wins);
    ("lease: settle drops pending regrant copies", `Quick,
     test_lease_settle_drops_pending_copy);
    ("pool: lease expiry regrants without killing", `Quick,
     test_lease_expiry_regrants);
    ("pool: sequential resume of a lease checkpoint", `Quick,
     test_seq_resume_of_lease_checkpoint);
    ("pool: pool resume of a lease checkpoint", `Quick,
     test_pool_resume_of_lease_checkpoint);
    ("distributed: parallel checkpoint/resume round-trip", `Slow,
     test_pool_checkpoint_resume_roundtrip);
    ("distributed: SIGKILLed worker pool mid-campaign", `Slow,
     test_kill_one_pool_equiv);
    ("distributed: SIGTERM drains a pool gracefully", `Slow,
     test_sigterm_drain);
    ("distributed: mismatched cookie rejected in handshake", `Slow,
     test_cookie_mismatch_rejected) ]
  @ tcp_equiv_cases @ network_chaos_cases
