(* Chaos-tested self-checking: fault injection for the verifier
   itself.

   These tests arm the Chaos injector against the verifier's own
   solver, worker pool and checkpoint layers and assert that the
   hardening added alongside it actually heals every injected failure
   mode: solver retries absorb injected Unknowns, the heartbeat
   watchdog reaps a SIGSTOPped worker, poison units are quarantined
   rather than retried forever, a corrupted checkpoint falls back to
   its .bak rotation — and, the acceptance property, a whole campaign
   under a fixed chaos spec/seed converges to the clean run's
   fingerprint at 1 and 4 workers.  Counterexample validation is
   exercised both ways: clean runs report zero unvalidated errors, a
   deliberately flaky testbench gets its error demoted. *)

module Engine = Symex.Engine
module Search = Symex.Search
module Error = Symex.Error
module Budget = Symex.Budget
module Checkpoint = Symex.Checkpoint
module Decision = Symex.Decision
module Pool = Symex.Pool
module Expr = Smt.Expr
module Solver = Smt.Solver
module Verify = Symsysc.Verify
module Report = Symsysc.Report

let scenario ?strategy ?workers ?heartbeat_ms ?validate () =
  Verify.scenario ~num_sources:4 ~t5_max_len:8 ?strategy ?workers
    ?heartbeat_ms ?validate ()

(* Chaos and the retry count are process-global; every test that arms
   them must disarm on the way out or it poisons the suites that run
   after it. *)
let with_chaos ?seed spec f =
  Chaos.configure ?seed spec;
  Fun.protect ~finally:Chaos.disable f

let with_retries n f =
  Solver.set_retries n;
  Fun.protect ~finally:(fun () -> Solver.set_retries 0) f

let chaos_total counts = List.fold_left (fun a (_, n) -> a + n) 0 counts

(* Everything a chaos run must reproduce from the clean run.  The
   instruction count is deliberately absent: healing an injected
   Unknown retries the query with perturbed SAT phases, which may find
   a {e different} satisfying model, and a concretization (t5's
   symbolic memcpy length) executed under a different concrete value
   runs a different number of instructions — without moving the
   verdict, the bug sites or any path total. *)
let fingerprint (r : Report.t) =
  let e = r.Report.engine in
  Printf.sprintf
    "%s paths=%d completed=%d errored=%d infeasible=%d unknown=%d \
     exhausted=%b errors=[%s]"
    (Report.verdict_to_string r.Report.verdict)
    e.Engine.paths e.Engine.paths_completed e.Engine.paths_errored
    e.Engine.paths_infeasible e.Engine.paths_unknown
    e.Engine.exhausted
    (String.concat ","
       (List.sort_uniq compare
          (List.map
             (fun (err : Error.t) ->
                err.Error.site ^ "/" ^ Error.kind_to_string err.Error.kind)
             e.Engine.errors)))

(* ------------------------------------------------------------------ *)
(* Spec parsing and stream determinism                                 *)

let test_spec_parse () =
  (match Chaos.parse_spec "" with
   | Ok [] -> ()
   | Ok _ -> Alcotest.fail "empty spec should be the empty list"
   | Error e -> Alcotest.fail e);
  (match Chaos.parse_spec "solver-unknown:0.5,worker-crash" with
   | Ok [ (Chaos.Solver_unknown, r); (Chaos.Worker_crash, r') ] ->
     Alcotest.(check (float 1e-9)) "explicit rate" 0.5 r;
     Alcotest.(check (float 1e-9)) "default rate" 1.0 r'
   | Ok _ -> Alcotest.fail "unexpected spec shape"
   | Error e -> Alcotest.fail e);
  (* Round-trip through the printer. *)
  (match Chaos.parse_spec "frame-corrupt:0.25,checkpoint-corrupt" with
   | Ok spec ->
     (match Chaos.parse_spec (Chaos.spec_to_string spec) with
      | Ok spec' ->
        Alcotest.(check bool) "round-trip" true (spec = spec')
      | Error e -> Alcotest.fail e)
   | Error e -> Alcotest.fail e);
  (match Chaos.parse_spec "no-such-point:0.5" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "unknown point should be rejected");
  match Chaos.parse_spec "solver-unknown:1.5" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "rate outside [0,1] should be rejected"

let draws n p = List.init n (fun _ -> Chaos.fire p)

let test_streams_deterministic () =
  let spec = [ (Chaos.Solver_unknown, 0.5); (Chaos.Worker_crash, 0.5) ] in
  let a =
    with_chaos ~seed:42 spec (fun () -> draws 64 Chaos.Solver_unknown)
  in
  let b =
    with_chaos ~seed:42 spec (fun () -> draws 64 Chaos.Solver_unknown)
  in
  Alcotest.(check bool) "same seed, same decisions" true (a = b);
  let c =
    with_chaos ~seed:43 spec (fun () -> draws 64 Chaos.Solver_unknown)
  in
  Alcotest.(check bool) "different seed, different decisions" true (a <> c);
  (* Streams are per-point: drawing one point does not disturb another. *)
  let solver_then_crash =
    with_chaos ~seed:42 spec (fun () ->
        let s = draws 64 Chaos.Solver_unknown in
        (s, draws 64 Chaos.Worker_crash))
  in
  let crash_then_solver =
    with_chaos ~seed:42 spec (fun () ->
        let c = draws 64 Chaos.Worker_crash in
        (draws 64 Chaos.Solver_unknown, c))
  in
  Alcotest.(check bool) "per-point streams independent" true
    (solver_then_crash = crash_then_solver)

let test_counts_accounting () =
  with_chaos ~seed:1 [ (Chaos.Solver_unknown, 0.5) ] (fun () ->
      let fired =
        List.length (List.filter Fun.id (draws 100 Chaos.Solver_unknown))
      in
      Alcotest.(check bool) "a 0.5 rate fires sometimes" true (fired > 0);
      Alcotest.(check int) "counts record every injection" fired
        (List.assoc "solver-unknown" (Chaos.counts ()));
      Alcotest.(check int) "total sums the counts" fired (Chaos.total ());
      let before = Chaos.counts () in
      ignore (draws 50 Chaos.Solver_unknown);
      let delta = Chaos.sub_counts (Chaos.counts ()) before in
      Alcotest.(check int) "sub_counts isolates the delta"
        (Chaos.total () - fired)
        (chaos_total delta);
      Alcotest.(check int) "add_counts merges back" (Chaos.total ())
        (chaos_total (Chaos.add_counts before delta)));
  Alcotest.(check bool) "disarmed injector never fires" false
    (List.exists Fun.id (draws 50 Chaos.Solver_unknown))

(* ------------------------------------------------------------------ *)
(* Solver retries heal injected Unknowns                               *)

let test_retry_heals_injected_unknown () =
  with_retries 8 (fun () ->
      with_chaos ~seed:5 [ (Chaos.Solver_unknown, 0.25) ] (fun () ->
          let r = Verify.run_test (scenario ()) "t1" in
          let e = r.Report.engine in
          Alcotest.(check int) "no path lost to injected unknowns" 0
            e.Engine.paths_unknown;
          Alcotest.(check bool) "run still exhaustive" true
            e.Engine.exhausted;
          Alcotest.(check bool) "retries actually fired" true
            (e.Engine.solver_stats.Solver.Stats.sat_retries > 0);
          Alcotest.(check bool) "injections accounted in the report" true
            (chaos_total e.Engine.resilience.Engine.res_chaos > 0)))

(* ------------------------------------------------------------------ *)
(* Counterexample validation                                           *)

(* Clean engine + solver: every reported error's model replays to the
   same failure, so no error is demoted.  This is the self-check the
   design leans on: nonzero unvalidated means the verifier is suspect. *)
let check_clean_validation strategy name () =
  let r = Verify.run_test (scenario ~strategy ()) name in
  Alcotest.(check int) "zero unvalidated errors" 0
    r.Report.engine.Engine.resilience.Engine.res_unvalidated;
  List.iter
    (fun (e : Error.t) ->
       Alcotest.(check bool) (e.Error.site ^ " validated") true
         e.Error.validated)
    r.Report.engine.Engine.errors

let strategies =
  [ ("dfs", Search.Dfs);
    ("bfs", Search.Bfs);
    ("random", Search.Random_path 42);
    ("cover-new", Search.Cover_new) ]

let clean_validation_cases =
  List.concat_map
    (fun (sname, strategy) ->
       List.map
         (fun name ->
            ( Printf.sprintf "validation: clean %s/%s" sname name,
              `Slow,
              check_clean_validation strategy name ))
         [ "t1"; "t2"; "t3"; "t4"; "t5" ])
    strategies

let e8 v = Expr.int ~width:8 v

(* A testbench whose error cannot be reproduced: the check exists only
   for the first [threshold] executions, so by the time validation
   replays the counterexample the failure is gone — exactly the shape
   of a verifier (or flaky-model) bug that validation is meant to
   catch. *)
let test_unvalidated_flagged () =
  let calls = ref 0 in
  let threshold = ref max_int in
  let body () =
    incr calls;
    let x = Engine.fresh "x" 8 in
    if !calls <= !threshold then
      Engine.check ~site:"flaky:check" (Expr.ult x (e8 16))
  in
  (* Discover how many executions exploration needs... *)
  let rep0 =
    Engine.Session.run ~label:"flaky"
      (Engine.Session.make ~validate:false ())
      body
  in
  Alcotest.(check int) "flaky body errors once" 1
    (List.length rep0.Engine.errors);
  (* ...then make the check evaporate exactly when validation replays. *)
  threshold := !calls;
  calls := 0;
  let rep =
    Engine.Session.run ~label:"flaky" (Engine.Session.make ()) body
  in
  (match rep.Engine.errors with
   | [ e ] ->
     Alcotest.(check bool) "error demoted to unvalidated" false
       e.Error.validated
   | _ -> Alcotest.fail "expected exactly one error");
  Alcotest.(check int) "resilience counts the demotion" 1
    rep.Engine.resilience.Engine.res_unvalidated

let test_validated_error_confirmed () =
  let body () =
    let x = Engine.fresh "x" 8 in
    Engine.check ~site:"stable:check" (Expr.ult x (e8 16))
  in
  let rep =
    Engine.Session.run ~label:"stable" (Engine.Session.make ()) body
  in
  (match rep.Engine.errors with
   | [ e ] ->
     Alcotest.(check bool) "stable error stays validated" true
       e.Error.validated
   | _ -> Alcotest.fail "expected exactly one error");
  Alcotest.(check int) "no demotions" 0
    rep.Engine.resilience.Engine.res_unvalidated

(* ------------------------------------------------------------------ *)
(* Checkpoint integrity                                                *)

let mk_ck label =
  { Checkpoint.label; strategy = "dfs";
    frontier = [ ("root", [| Decision.Dir true |]) ];
    leases = [];
    visits = [ ("root", 1) ]; rng = 7L; paths = 1; completed = 1;
    errored = 0; infeasible = 0; unknown = 0; instructions = 3;
    wall_time = 0.1; solver = Solver.Stats.zero; errors = [];
    degraded = false; stop_reason = None }

let with_ck_file f =
  let path = Filename.temp_file "symsysc_chaos_ck" ".json" in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p -> try Sys.remove p with Sys_error _ -> ())
        [ path; Checkpoint.backup_path path ])
    (fun () -> f path)

let clobber path =
  let oc = open_out path in
  output_string oc "{ torn garbage";
  close_out oc

let test_checkpoint_bak_fallback () =
  with_ck_file (fun path ->
      Checkpoint.save path (mk_ck "one");
      Checkpoint.save path (mk_ck "two");
      (* The rotation now holds "one"; tear the primary. *)
      clobber path;
      let f0 = Checkpoint.fallbacks () in
      (match Checkpoint.load path with
       | Ok ck ->
         Alcotest.(check string) "backup snapshot served" "one"
           ck.Checkpoint.label
       | Error e -> Alcotest.fail ("fallback failed: " ^ e));
      Alcotest.(check int) "fallback counted" (f0 + 1)
        (Checkpoint.fallbacks ());
      (* Both copies gone: load must fail, not fabricate state. *)
      clobber (Checkpoint.backup_path path);
      match Checkpoint.load path with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "load of two torn files should fail")

let test_checkpoint_crc_rejects_flip () =
  with_ck_file (fun path ->
      Checkpoint.save path (mk_ck "good");
      (match Checkpoint.load path with
       | Ok ck ->
         Alcotest.(check string) "clean round-trip" "good"
           ck.Checkpoint.label
       | Error e -> Alcotest.fail e);
      (* Flip one payload byte; the envelope CRC must notice.  (No .bak
         exists for a first save, so the load has nothing to fall back
         to.) *)
      let ic = open_in_bin path in
      let doc = really_input_string ic (in_channel_length ic) in
      close_in ic;
      let i =
        match String.index_opt doc 'd' with
        | Some i -> i
        | None -> String.length doc / 2
      in
      let doc = Bytes.of_string doc in
      Bytes.set doc i 'X';
      let oc = open_out_bin path in
      output_bytes oc doc;
      close_out oc;
      match Checkpoint.load path with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "bit flip should fail the CRC")

let test_chaos_corrupts_checkpoint_write () =
  with_ck_file (fun path ->
      Checkpoint.save path (mk_ck "good");
      with_chaos ~seed:3 [ (Chaos.Checkpoint_corrupt, 1.0) ] (fun () ->
          Checkpoint.save path (mk_ck "doomed");
          Alcotest.(check int) "injection accounted" 1
            (List.assoc "checkpoint-corrupt" (Chaos.counts ())));
      match Checkpoint.load path with
      | Ok ck ->
        Alcotest.(check string)
          "rotation rescues the previous snapshot" "good"
          ck.Checkpoint.label
      | Error e -> Alcotest.fail ("expected .bak fallback: " ^ e))

(* ------------------------------------------------------------------ *)
(* Worker watchdog and poison-unit quarantine                          *)

let unit_ok ?(forks = []) () =
  { Pool.outcome = Pool.Unit_completed; forks; errors = []; visits = [];
    instructions = 1; degraded = false; solver = Solver.Stats.zero;
    requeue = None; chaos = [];
    coverage = Obs.Coverage.zero; profile = Obs.Profile.zero;
    events = []; events_dropped = 0;
    snapshots_taken = 0; snapshot_restores = 0; replay_fallbacks = 0;
    instructions_saved = 0 }

(* A SIGSTOPped worker emits no heartbeats and never exits, which used
   to block the run forever; the watchdog must reap and replace it. *)
let test_watchdog_reaps_sigstopped_worker () =
  let flag = Filename.temp_file "symsysc_stop" ".flag" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove flag with Sys_error _ -> ())
    (fun () ->
       let config =
         { Pool.workers = 2; strategy = Search.Dfs;
           limits = Engine.no_limits; stop_after_errors = None;
           label = "stop-test"; heartbeat_ms = Some 50;
           max_unit_crashes = 3; listen = None; lease_ms = None;
           cookie = None }
       in
       let exec ~prefix =
         match Array.to_list prefix with
         | [] ->
           unit_ok
             ~forks:
               [ ("root", [| Decision.Dir false |]);
                 ("root", [| Decision.Dir true |]) ]
             ()
         | [ Decision.Dir true ] when Sys.file_exists flag ->
           (try Sys.remove flag with Sys_error _ -> ());
           Unix.kill (Unix.getpid ()) Sys.sigstop;
           (* unreachable: the watchdog SIGKILLs us while stopped *)
           unit_ok ()
         | _ -> unit_ok ()
       in
       let r = Pool.run config ~exec () in
       Alcotest.(check int) "watchdog reaped one hung worker" 1
         r.Pool.r_hung;
       Alcotest.(check int) "the hang counts as a worker death" 1
         r.Pool.r_worker_deaths;
       Alcotest.(check bool) "the in-flight unit was re-queued" true
         (r.Pool.r_requeued >= 1);
       Alcotest.(check int) "all three units completed" 3 r.Pool.r_completed;
       Alcotest.(check bool) "run still counts as exhaustive" true
         r.Pool.r_exhausted)

(* A unit that kills every worker it touches must be dropped after
   max_unit_crashes, not retried until the respawn cap burns out. *)
let test_poison_unit_quarantined () =
  let config =
    { Pool.workers = 2; strategy = Search.Dfs; limits = Engine.no_limits;
      stop_after_errors = None; label = "poison-test";
      heartbeat_ms = None; max_unit_crashes = 2; listen = None;
      lease_ms = None; cookie = None }
  in
  let exec ~prefix =
    match Array.to_list prefix with
    | [] ->
      unit_ok
        ~forks:
          [ ("root", [| Decision.Dir false |]);
            ("root", [| Decision.Dir true |]) ]
        ()
    | [ Decision.Dir true ] ->
      Unix.kill (Unix.getpid ()) Sys.sigkill;
      assert false
    | _ -> unit_ok ()
  in
  let r = Pool.run config ~exec () in
  Alcotest.(check int) "poison unit quarantined once" 1 r.Pool.r_quarantined;
  Alcotest.(check int) "it was allowed max_unit_crashes kills" 2
    r.Pool.r_worker_deaths;
  Alcotest.(check int) "the healthy units still completed" 2
    r.Pool.r_completed;
  Alcotest.(check bool) "a quarantined path forfeits exhaustiveness" false
    r.Pool.r_exhausted

(* ------------------------------------------------------------------ *)
(* SIGTERM parity with SIGINT                                          *)

let test_sigterm_sets_interrupt () =
  Budget.install_signal_handlers ();
  Budget.clear_interrupt ();
  Fun.protect ~finally:Budget.clear_interrupt (fun () ->
      Unix.kill (Unix.getpid ()) Sys.sigterm;
      (* OCaml delivers signals at safe points; spin briefly. *)
      let deadline = Unix.gettimeofday () +. 2.0 in
      while
        (not (Budget.interrupted ())) && Unix.gettimeofday () < deadline
      do
        ignore (Sys.opaque_identity (ref ()))
      done;
      Alcotest.(check bool) "SIGTERM sets the interrupt flag" true
        (Budget.interrupted ()))

(* ------------------------------------------------------------------ *)
(* Acceptance: chaos campaign converges to the clean run               *)

(* Every point armed at once (worker points need the watchdog, hence
   heartbeats).  Rates are low enough that retries/requeues heal every
   injection; the spec/seed is fixed so the campaign is reproducible. *)
let campaign_spec =
  [ (Chaos.Solver_unknown, 0.1);
    (Chaos.Solver_stall, 0.02);
    (Chaos.Worker_crash, 0.05);
    (Chaos.Worker_hang, 0.02);
    (Chaos.Frame_truncate, 0.02);
    (Chaos.Frame_corrupt, 0.02) ]

let bug_sites (r : Report.t) =
  List.sort_uniq compare
    (List.map
       (fun (err : Error.t) ->
          (err.Error.site, Error.kind_to_string err.Error.kind))
       r.Report.engine.Engine.errors)

let check_campaign_equiv name () =
  let clean = Verify.run_test (scenario ()) name in
  List.iter
    (fun workers ->
       let chaotic =
         with_retries 8 (fun () ->
             with_chaos ~seed:11 campaign_spec (fun () ->
                 Verify.run_test
                   (scenario ~workers ~heartbeat_ms:50 ())
                   name))
       in
       let res = chaotic.Report.engine.Engine.resilience in
       (* The acceptance property: the faulted campaign converges to
          the clean run's verdict and bug set. *)
       Alcotest.(check string)
         (Printf.sprintf "verdict equals clean at %d workers" workers)
         (Report.verdict_to_string clean.Report.verdict)
         (Report.verdict_to_string chaotic.Report.verdict);
       Alcotest.(check (list (pair string string)))
         (Printf.sprintf "bug sites equal clean at %d workers" workers)
         (bug_sites clean) (bug_sites chaotic);
       Alcotest.(check int)
         (Printf.sprintf "no unvalidated errors at %d workers" workers)
         0 res.Engine.res_unvalidated;
       (* Quarantine is the one sanctioned loss (a poison-looking unit
          dropped after repeated worker deaths); without it the whole
          fingerprint — path totals, instructions, exhaustiveness —
          must match the clean run. *)
       if res.Engine.res_quarantined = 0 then
         Alcotest.(check string)
           (Printf.sprintf "full fingerprint equals clean at %d workers"
              workers)
           (fingerprint clean) (fingerprint chaotic))
    [ 1; 4 ]

let campaign_cases =
  List.map
    (fun name ->
       ( Printf.sprintf "chaos campaign equivalence: %s" name,
         `Slow,
         check_campaign_equiv name ))
    [ "t1"; "t2"; "t3"; "t4"; "t5" ]

let suite =
  [
    ("chaos: spec parsing", `Quick, test_spec_parse);
    ("chaos: streams deterministic per seed", `Quick,
     test_streams_deterministic);
    ("chaos: injection accounting", `Quick, test_counts_accounting);
    ("chaos: retries heal injected unknowns", `Quick,
     test_retry_heals_injected_unknown);
    ("validation: flaky error demoted", `Quick, test_unvalidated_flagged);
    ("validation: stable error confirmed", `Quick,
     test_validated_error_confirmed);
    ("checkpoint: torn primary falls back to .bak", `Quick,
     test_checkpoint_bak_fallback);
    ("checkpoint: CRC rejects a bit flip", `Quick,
     test_checkpoint_crc_rejects_flip);
    ("checkpoint: chaos-corrupted write rescued by rotation", `Quick,
     test_chaos_corrupts_checkpoint_write);
    ("pool: watchdog reaps a SIGSTOPped worker", `Quick,
     test_watchdog_reaps_sigstopped_worker);
    ("pool: poison unit quarantined", `Quick, test_poison_unit_quarantined);
    ("budget: SIGTERM interrupts gracefully", `Quick,
     test_sigterm_sets_interrupt);
  ]
  @ clean_validation_cases @ campaign_cases
