(* Deep-observability tests: coverage-map determinism across worker
   counts, worker-trace merge ordering, drop-count accounting, profile
   bucket totals, and the report-diff comparison. *)

module Engine = Symex.Engine
module Coverage = Obs.Coverage
module Profile = Obs.Profile
module Event = Obs.Event
module Export = Obs.Export
module Json = Obs.Json
module Verify = Symsysc.Verify
module Report = Symsysc.Report

let scenario ?workers () =
  Verify.scenario ~num_sources:4 ~t5_max_len:8 ?workers ()

let tests = [ "t1"; "t2"; "t3"; "t4"; "t5" ]

(* ------------------------------------------------------------------ *)
(* Coverage algebra                                                    *)

let sample_coverage () =
  let before = Coverage.get () in
  Coverage.declare ~peripheral:"p" ~register:"r0" ~size:4;
  Coverage.declare ~peripheral:"p" ~register:"r1" ~size:8;
  Coverage.record_read ~peripheral:"p" ~register:"r0" ~off:0 ~len:2 ();
  Coverage.record_write ~peripheral:"p" ~register:"r1" ();
  Coverage.record_arm ~site:"s:a" true;
  Coverage.record_arm ~site:"s:a" true;
  Coverage.record_arm ~site:"s:b" false;
  let delta = Coverage.sub (Coverage.get ()) before in
  Coverage.restore before;
  delta

let check_coverage_algebra () =
  let d = sample_coverage () in
  Alcotest.(check bool) "delta is non-trivial" true (d <> Coverage.zero);
  Alcotest.(check bool) "add zero is identity" true
    (Coverage.add d Coverage.zero = d);
  Alcotest.(check bool) "sub self is zero" true
    (Coverage.sub d d = Coverage.zero);
  Alcotest.(check bool) "add then sub round-trips" true
    (Coverage.sub (Coverage.add d d) d = d);
  Alcotest.(check bool) "json round-trips" true
    (Coverage.of_json (Coverage.to_json d) = d);
  (* Summaries on the sample: r0 read (2 of 4 bytes), r1 written
     whole, site s:a one arm, site s:b one arm. *)
  (match Coverage.peripherals d with
   | [ p ] ->
     Alcotest.(check string) "peripheral" "p" p.Coverage.ps_peripheral;
     Alcotest.(check int) "registers" 2 p.Coverage.ps_registers;
     Alcotest.(check int) "touched" 2 p.Coverage.ps_touched;
     Alcotest.(check int) "bits" ((4 + 8) * 8) p.Coverage.ps_bits;
     Alcotest.(check int) "bits touched" ((2 + 8) * 8)
       p.Coverage.ps_bits_touched
   | l ->
     Alcotest.failf "expected one peripheral summary, got %d"
       (List.length l));
  match Coverage.branches d with
  | [ b ] ->
    Alcotest.(check string) "group" "s" b.Coverage.bs_group;
    Alcotest.(check int) "arms" 4 b.Coverage.bs_arms;
    Alcotest.(check int) "covered" 2 b.Coverage.bs_covered
  | l -> Alcotest.failf "expected one branch group, got %d" (List.length l)

(* ------------------------------------------------------------------ *)
(* Coverage determinism across worker counts                           *)

let coverage_fingerprint (r : Report.t) =
  Json.to_string (Coverage.to_json r.Report.engine.Engine.coverage)

let check_coverage_equiv name () =
  let seq = Verify.run_test (scenario ()) name in
  Alcotest.(check bool) "sequential run has coverage" true
    (seq.Report.engine.Engine.coverage <> Coverage.zero);
  let par = Verify.run_test (scenario ~workers:4 ()) name in
  Alcotest.(check string) "coverage map equals sequential at 4 workers"
    (coverage_fingerprint seq) (coverage_fingerprint par);
  Alcotest.(check string) "coverage summary equals sequential"
    (Json.to_string
       (Coverage.summary_to_json seq.Report.engine.Engine.coverage))
    (Json.to_string
       (Coverage.summary_to_json par.Report.engine.Engine.coverage))

(* ------------------------------------------------------------------ *)
(* Profile: buckets partition solver wall time                         *)

let check_profile_algebra () =
  let before = Profile.get () in
  Profile.record_as ~origin:"o" ~stage:"s" 1.0;
  let mid = Profile.get () in
  Profile.record_as ~origin:"o" ~stage:"s" 2.0;
  Profile.record_as ~origin:"o2" ~stage:"s" 0.5;
  let after = Profile.get () in
  (* The (o, s) bucket exists on both sides of each delta, so this
     exercises subtraction over common keys — not just disjoint ones. *)
  let d = Profile.sub after mid in
  Alcotest.(check int) "delta count" 2 (Profile.total_count d);
  Alcotest.(check bool) "delta time" true
    (Float.abs (Profile.total_time d -. 2.5) < 1e-9);
  let whole = Profile.sub after before in
  Alcotest.(check bool) "deltas compose" true
    (Profile.add d (Profile.sub mid before) = whole);
  Alcotest.(check bool) "sub self is zero" true
    (Profile.sub after after = Profile.zero);
  Alcotest.(check bool) "json round-trips" true
    (Profile.of_json (Profile.to_json whole) = whole)

let check_profile_totals () =
  (* Pre-existing buckets (earlier suites, earlier runs in the same
     process) must not leak into a run's delta. *)
  Profile.record_as ~origin:"pollute" ~stage:"x" 100.0;
  let r = Verify.run_test (scenario ()) "t2" in
  let e = r.Report.engine in
  let profiled = Profile.total_time e.Engine.profile in
  let solver = e.Engine.solver_stats.Smt.Solver.Stats.time in
  Alcotest.(check bool) "profile is non-trivial" true
    (Profile.total_count e.Engine.profile > 0);
  Alcotest.(check bool)
    (Printf.sprintf "bucket times sum to solver time (%g vs %g)" profiled
       solver)
    true
    (Float.abs (profiled -. solver) < 1e-6);
  (* Bucket keys are engine sites and solver stages; the engine always
     tags an origin before querying, so neither "init" nor the
     polluted bucket shows up in the delta. *)
  List.iter
    (fun ((origin, stage), _) ->
       Alcotest.(check bool)
         (Printf.sprintf "bucket (%s, %s) has a real origin" origin stage)
         false (origin = "init" || origin = "pollute"))
    e.Engine.profile

(* ------------------------------------------------------------------ *)
(* Tagged trace merge                                                  *)

let ev ts name = { Event.ts; cat = "test"; name; kind = Event.Instant;
                   args = [] }

let chrome_rows doc =
  match Json.of_string doc with
  | Error msg -> Alcotest.failf "unparsable chrome trace: %s" msg
  | Ok j ->
    (match Option.bind (Json.member "traceEvents" j) Json.to_list_opt with
     | Some rows -> rows
     | None -> Alcotest.fail "no traceEvents array")

let row_str k row =
  Option.value ~default:"" (Option.bind (Json.member k row) Json.to_string_opt)

let check_trace_merge () =
  let tagged =
    [ (0, ev 2.0 "m0"); (1, ev 5.0 "w0a"); (3, ev 1.0 "w2a");
      (3, ev 9.0 "w2b"); (1, ev 5.0 "w0b") ]
  in
  let rows = chrome_rows (Export.to_chrome_tagged tagged) in
  let tracks =
    List.sort_uniq compare
      (List.filter_map
         (fun r ->
            if row_str "name" r = "process_name" then
              Option.bind (Json.member "args" r)
                (fun a ->
                   Option.bind (Json.member "name" a) Json.to_string_opt)
            else None)
         rows)
  in
  Alcotest.(check (list string)) "one named track per source"
    [ "master"; "worker 0"; "worker 2" ] tracks;
  let payload =
    List.filter (fun r -> row_str "ph" r = "i") rows
  in
  Alcotest.(check (list string)) "events sorted by timestamp, stably"
    [ "w2a"; "m0"; "w0a"; "w0b"; "w2b" ]
    (List.map (row_str "name") payload);
  (* Distinct sources land in distinct Chrome processes. *)
  let pid_of name =
    List.find_map
      (fun r ->
         if row_str "name" r = name then
           Option.bind (Json.member "pid" r) Json.to_int_opt
         else None)
      payload
  in
  Alcotest.(check bool) "master and worker pids differ" true
    (pid_of "m0" <> pid_of "w0a" && pid_of "w0a" <> pid_of "w2a")

(* A parallel run with a live recorder really merges worker streams:
   the recorder ends up holding events tagged with worker sources. *)
let check_pool_forwarding () =
  let r = Export.recorder () in
  let finish () = Export.stop r in
  Fun.protect ~finally:finish (fun () ->
      ignore (Verify.run_test (scenario ~workers:2 ()) "t1");
      let tags =
        List.sort_uniq compare (List.map fst (Export.tagged_events r))
      in
      Alcotest.(check bool) "some events came from workers" true
        (List.exists (fun t -> t > 0) tags))

(* ------------------------------------------------------------------ *)
(* Drop accounting                                                     *)

let check_drop_accounting () =
  let r = Export.recorder ~limit:3 () in
  let finish () = Export.stop r in
  Fun.protect ~finally:finish (fun () ->
      Export.inject ~worker:0 (List.init 5 (fun i -> ev (float_of_int i) "e"));
      Alcotest.(check int) "recorder keeps up to the limit" 3
        (List.length (Export.events r));
      Alcotest.(check int) "overflow counted as local drops" 2
        (Export.dropped r);
      Export.note_remote_dropped 4;
      Alcotest.(check int) "worker drops accounted separately" 4
        (Export.remote_dropped r);
      Alcotest.(check int) "dropped_total sums both" 6
        (Export.dropped_total ()))

(* ------------------------------------------------------------------ *)
(* Event JSON round-trip (the worker→master frame encoding)            *)

let check_event_roundtrip () =
  let cases =
    [ { Event.ts = 1.5; cat = "engine"; name = "fork";
        kind = Event.Instant; args = [ ("n", Event.Int 3) ] };
      { Event.ts = 2.0; cat = "solver"; name = "q";
        kind = Event.Counter; args = [ ("load", Event.Float 0.5) ] };
      { Event.ts = 3.0; cat = "tlm"; name = "route";
        kind = Event.Span_begin; args = [ ("ok", Event.Bool true) ] };
      { Event.ts = 4.0; cat = "tlm"; name = "route";
        kind = Event.Span_end; args = [] };
      { Event.ts = 5.0; cat = "kernel"; name = "delta";
        kind = Event.Complete 12.5; args = [ ("s", Event.Str "x") ] } ]
  in
  List.iter
    (fun e ->
       match Event.of_json (Event.to_json e) with
       | Some e' ->
         Alcotest.(check bool)
           (Printf.sprintf "round-trips %s/%s" e.Event.cat e.Event.name)
           true (e' = e)
       | None -> Alcotest.failf "decode failed for %s" e.Event.name)
    cases;
  Alcotest.(check bool) "malformed phase rejected" true
    (Event.of_json (Json.Obj [ ("ts", Json.Float 0.0); ("ph", Json.Str "?") ])
     = None)

(* ------------------------------------------------------------------ *)
(* report-diff                                                         *)

let check_report_diff () =
  let report = Verify.run_test (scenario ()) "t1" in
  let j = Report.to_json report in
  Alcotest.(check (list string)) "a report agrees with itself" []
    (Symsysc.Diff.compare_reports j j);
  (* Wall-clock fields are excluded: jittering them is not a diff. *)
  let set k v = function
    | Json.Obj fields ->
      Json.Obj (List.map (fun (k', v') -> (k', if k' = k then v else v')) fields)
    | other -> other
  in
  Alcotest.(check (list string)) "wall time is ignored" []
    (Symsysc.Diff.compare_reports j (set "wall_time" (Json.Float 999.0) j));
  Alcotest.(check (list string)) "solver time is ignored" []
    (Symsysc.Diff.compare_reports j (set "solver_time" (Json.Float 999.0) j));
  (* Deterministic fields are not. *)
  let mutated = set "paths" (Json.Int 123456) j in
  Alcotest.(check bool) "path-count change is a regression" true
    (Symsysc.Diff.compare_reports j mutated <> []);
  let no_errors = set "errors" (Json.List []) j in
  Alcotest.(check bool) "losing a bug is a regression" true
    (Symsysc.Diff.compare_reports j no_errors <> []);
  let no_cov = set "coverage" (Json.Obj []) j in
  Alcotest.(check bool) "coverage change is a regression" true
    (Symsysc.Diff.compare_reports j no_cov <> [])

(* ------------------------------------------------------------------ *)
(* Explain entries for CLINT / UART detector sites                     *)

let check_explain_sites () =
  let err site =
    { Symex.Error.kind = Symex.Error.Assertion_failure; site; message = "";
      counterexample = []; path_id = 0; instructions = 0; found_after = 0.0;
      validated = true }
  in
  List.iter
    (fun site ->
       Alcotest.(check bool)
         (Printf.sprintf "explain knows %s" site)
         true
         (Symsysc.Explain.lookup (err site) <> None))
    [ "clint:not-early"; "clint:fired"; "clint:exact"; "clint:retract";
      "clint:delay"; "uart:loopback"; "uart:wm-property"; "uart:div" ]

(* ------------------------------------------------------------------ *)

let suite =
  [ ("coverage: delta algebra and summaries", `Quick,
     check_coverage_algebra);
    ("profile: delta algebra over common keys", `Quick,
     check_profile_algebra);
    ("profile: buckets sum to solver time", `Quick, check_profile_totals);
    ("trace: tagged chrome merge", `Quick, check_trace_merge);
    ("trace: pool forwards worker events", `Slow, check_pool_forwarding);
    ("trace: drop accounting", `Quick, check_drop_accounting);
    ("event: frame json round-trip", `Quick, check_event_roundtrip);
    ("report-diff: deterministic fields only", `Quick, check_report_diff);
    ("explain: clint/uart detector sites", `Quick, check_explain_sites) ]
  @ List.map
      (fun name ->
         ( Printf.sprintf "coverage: 1 worker = 4 workers on %s" name,
           `Slow, check_coverage_equiv name ))
      tests
