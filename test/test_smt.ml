(* Unit and property tests for the SMT substrate: bitvectors, terms,
   intervals, the SAT solver and the solver pipeline. *)

module Bv = Smt.Bv
module Expr = Smt.Expr
module Interval = Smt.Interval
module Sat = Smt.Sat
module Solver = Smt.Solver
module Model = Smt.Model

let bv w v = Bv.make ~width:w v
let check_bv msg expected actual =
  Alcotest.(check string) msg (Bv.to_string expected) (Bv.to_string actual)

(* ------------------------------------------------------------------ *)
(* Bv unit tests                                                       *)

let test_bv_make_masks () =
  check_bv "truncated to width" (bv 8 0x34L) (bv 8 0x1234L);
  Alcotest.(check int) "width" 8 (Bv.width (bv 8 0xFFL));
  Alcotest.(check int64) "value" 0xFFL (Bv.to_int64 (Bv.ones 8))

let test_bv_signed () =
  Alcotest.(check int64) "sign extend" (-1L) (Bv.to_signed_int64 (Bv.ones 8));
  Alcotest.(check int64) "positive" 0x7FL (Bv.to_signed_int64 (bv 8 0x7FL));
  Alcotest.(check int64) "64-bit identity" (-1L) (Bv.to_signed_int64 (Bv.ones 64))

let test_bv_wrap_arithmetic () =
  check_bv "add wraps" (bv 8 1L) (Bv.add (bv 8 0xFFL) (bv 8 2L));
  check_bv "sub wraps" (bv 8 0xFFL) (Bv.sub (bv 8 1L) (bv 8 2L));
  check_bv "mul wraps" (bv 8 0xB5L) (Bv.mul (bv 8 0x15L) (bv 8 0x21L));
  check_bv "neg" (bv 8 0xFFL) (Bv.neg (bv 8 1L))

let test_bv_div_conventions () =
  (* SMT-LIB: x udiv 0 = ones, x urem 0 = x. *)
  check_bv "udiv by zero" (Bv.ones 8) (Bv.udiv (bv 8 7L) (Bv.zero 8));
  check_bv "urem by zero" (bv 8 7L) (Bv.urem (bv 8 7L) (Bv.zero 8));
  check_bv "udiv" (bv 8 3L) (Bv.udiv (bv 8 13L) (bv 8 4L));
  check_bv "urem" (bv 8 1L) (Bv.urem (bv 8 13L) (bv 8 4L));
  (* Signed: -7 / 2 = -3 (truncating), -7 rem 2 = -1. *)
  check_bv "sdiv trunc" (bv 8 0xFDL) (Bv.sdiv (bv 8 0xF9L) (bv 8 2L));
  check_bv "srem sign" (bv 8 0xFFL) (Bv.srem (bv 8 0xF9L) (bv 8 2L));
  (* min_int / -1 wraps to min_int; rem 0. *)
  check_bv "sdiv overflow" (bv 8 0x80L) (Bv.sdiv (bv 8 0x80L) (bv 8 0xFFL));
  check_bv "srem overflow" (Bv.zero 8) (Bv.srem (bv 8 0x80L) (bv 8 0xFFL));
  check_bv "sdiv by zero, positive" (Bv.ones 8) (Bv.sdiv (bv 8 7L) (Bv.zero 8));
  check_bv "sdiv by zero, negative" (Bv.one 8) (Bv.sdiv (bv 8 0xF9L) (Bv.zero 8))

let test_bv_shifts () =
  check_bv "shl" (bv 8 0xF0L) (Bv.shl (bv 8 0x0FL) (bv 8 4L));
  check_bv "shl overflow" (Bv.zero 8) (Bv.shl (bv 8 0xFFL) (bv 8 8L));
  check_bv "lshr" (bv 8 0x0FL) (Bv.lshr (bv 8 0xF0L) (bv 8 4L));
  check_bv "ashr negative" (Bv.ones 8) (Bv.ashr (bv 8 0x80L) (bv 8 7L));
  check_bv "ashr saturates" (Bv.ones 8) (Bv.ashr (bv 8 0x80L) (bv 8 100L));
  check_bv "lshr saturates" (Bv.zero 8) (Bv.lshr (bv 8 0xFFL) (bv 8 100L))

let test_bv_structure () =
  check_bv "extract" (bv 4 0xAL) (Bv.extract ~hi:7 ~lo:4 (bv 8 0xA5L));
  check_bv "concat" (bv 16 0xA5B6L) (Bv.concat (bv 8 0xA5L) (bv 8 0xB6L));
  check_bv "zext" (bv 16 0xFFL) (Bv.zext 8 (Bv.ones 8));
  check_bv "sext" (bv 16 0xFFFFL) (Bv.sext 8 (Bv.ones 8));
  Alcotest.(check bool) "bit set" true (Bv.bit (bv 8 0x10L) 4);
  Alcotest.(check bool) "bit clear" false (Bv.bit (bv 8 0x10L) 3)

let test_bv_compare () =
  Alcotest.(check bool) "ult unsigned" true (Bv.ult (bv 8 1L) (bv 8 0xFFL));
  Alcotest.(check bool) "slt signed" true (Bv.slt (bv 8 0xFFL) (bv 8 1L));
  Alcotest.(check bool) "ule refl" true (Bv.ule (bv 8 9L) (bv 8 9L));
  Alcotest.(check bool) "sle" true (Bv.sle (bv 8 0x80L) (bv 8 0x7FL))

let test_bv_invalid () =
  Alcotest.check_raises "width 0" (Invalid_argument "Bv: width must be in 1..64")
    (fun () -> ignore (Bv.zero 0));
  Alcotest.check_raises "width 65" (Invalid_argument "Bv: width must be in 1..64")
    (fun () -> ignore (Bv.zero 65));
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Bv.add: width mismatch (8 vs 16)") (fun () ->
        ignore (Bv.add (Bv.zero 8) (Bv.zero 16)))

(* ------------------------------------------------------------------ *)
(* Bv properties                                                       *)

let arb_bv w =
  QCheck.map
    (fun v -> Bv.make ~width:w (Int64.of_int v))
    QCheck.(int_bound 0xFFFF)

let prop name ?(count = 300) arb f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb f)

let bv_props =
  let w = 13 in
  [
    prop "add commutative" (QCheck.pair (arb_bv w) (arb_bv w)) (fun (a, b) ->
        Bv.equal (Bv.add a b) (Bv.add b a));
    prop "add associative"
      (QCheck.triple (arb_bv w) (arb_bv w) (arb_bv w))
      (fun (a, b, c) ->
         Bv.equal (Bv.add (Bv.add a b) c) (Bv.add a (Bv.add b c)));
    prop "sub is add neg" (QCheck.pair (arb_bv w) (arb_bv w)) (fun (a, b) ->
        Bv.equal (Bv.sub a b) (Bv.add a (Bv.neg b)));
    prop "udiv/urem reconstruct" (QCheck.pair (arb_bv w) (arb_bv w))
      (fun (a, b) ->
         QCheck.assume (not (Bv.is_zero b));
         Bv.equal a (Bv.add (Bv.mul (Bv.udiv a b) b) (Bv.urem a b)));
    prop "concat/extract roundtrip" (QCheck.pair (arb_bv w) (arb_bv w))
      (fun (a, b) ->
         let c = Bv.concat a b in
         Bv.equal a (Bv.extract ~hi:(2 * w - 1) ~lo:w c)
         && Bv.equal b (Bv.extract ~hi:(w - 1) ~lo:0 c));
    prop "lognot involutive" (arb_bv w) (fun a ->
        Bv.equal a (Bv.lognot (Bv.lognot a)));
    prop "de morgan" (QCheck.pair (arb_bv w) (arb_bv w)) (fun (a, b) ->
        Bv.equal
          (Bv.lognot (Bv.logand a b))
          (Bv.logor (Bv.lognot a) (Bv.lognot b)));
    prop "ult total" (QCheck.pair (arb_bv w) (arb_bv w)) (fun (a, b) ->
        Bv.ult a b || Bv.ult b a || Bv.equal a b);
    prop "sext preserves signed value" (arb_bv w) (fun a ->
        Int64.equal (Bv.to_signed_int64 a) (Bv.to_signed_int64 (Bv.sext 7 a)));
  ]

(* ------------------------------------------------------------------ *)
(* Expr: smart constructors and evaluation                             *)

let e_int v = Expr.int ~width:32 v

let test_expr_hash_consing () =
  let x = Expr.fresh_var "x" 32 in
  let a = Expr.add x (e_int 5) in
  let b = Expr.add x (e_int 5) in
  Alcotest.(check bool) "physically equal" true (Expr.equal a b);
  let c = Expr.add (e_int 5) x in
  Alcotest.(check bool) "commuted shares" true (Expr.equal a c)

let test_expr_folding () =
  Alcotest.(check bool) "const add" true
    (Expr.equal (Expr.add (e_int 2) (e_int 3)) (e_int 5));
  let x = Expr.fresh_var "x" 32 in
  Alcotest.(check bool) "x+0 = x" true (Expr.equal (Expr.add x (e_int 0)) x);
  Alcotest.(check bool) "x*1 = x" true (Expr.equal (Expr.mul x (e_int 1)) x);
  Alcotest.(check bool) "x*0 = 0" true
    (Expr.equal (Expr.mul x (e_int 0)) (e_int 0));
  Alcotest.(check bool) "x-x = 0" true
    (Expr.equal (Expr.sub x x) (e_int 0));
  Alcotest.(check bool) "x&x = x" true (Expr.equal (Expr.band x x) x);
  Alcotest.(check bool) "x^x = 0" true
    (Expr.equal (Expr.bxor x x) (e_int 0));
  Alcotest.(check bool) "eq refl" true (Expr.equal (Expr.eq x x) Expr.tru);
  Alcotest.(check bool) "x < x false" true (Expr.equal (Expr.ult x x) Expr.fls);
  Alcotest.(check bool) "x <= ones" true
    (Expr.equal (Expr.ule x (e_int (-1))) Expr.tru);
  Alcotest.(check bool) "not not" true (Expr.equal (Expr.not_ (Expr.not_ (Expr.eq x (e_int 1)))) (Expr.eq x (e_int 1)));
  Alcotest.(check bool) "ite same" true (Expr.equal (Expr.ite (Expr.eq x x) x x) x);
  Alcotest.(check bool) "zext id" true (Expr.equal (Expr.zext 32 x) x)

let test_expr_extract_rewrites () =
  let x = Expr.fresh_var "x" 32 in
  let ext = Expr.extract ~hi:15 ~lo:8 (Expr.extract ~hi:23 ~lo:0 x) in
  Alcotest.(check bool) "nested extract" true
    (Expr.equal ext (Expr.extract ~hi:15 ~lo:8 x));
  let z = Expr.zext 64 x in
  Alcotest.(check bool) "extract of zext low part" true
    (Expr.equal (Expr.extract ~hi:7 ~lo:0 z) (Expr.extract ~hi:7 ~lo:0 x));
  Alcotest.(check bool) "extract of zext high part is zero" true
    (Expr.equal (Expr.extract ~hi:63 ~lo:32 z) (Expr.int ~width:32 0))

let test_expr_vars () =
  let x = Expr.fresh_var "x" 8 and y = Expr.fresh_var "y" 8 in
  let e = Expr.add (Expr.mul x y) x in
  let names = List.map (fun (v : Expr.var) -> v.Expr.var_name) (Expr.vars e) in
  Alcotest.(check (list string)) "distinct vars in order" [ "x"; "y" ] names

let test_expr_eval () =
  let x = Expr.fresh_var "x" 8 in
  let lookup _ = Bv.make ~width:8 10L in
  let e = Expr.add (Expr.mul x x) (Expr.int ~width:8 1) in
  check_bv "eval 10*10+1 mod 256" (bv 8 101L) (Expr.eval lookup e);
  Alcotest.(check bool) "eval_bool" true
    (Expr.eval_bool lookup (Expr.ult x (Expr.int ~width:8 11)))

(* Random expression ASTs: build both a semantic closure and a term, and
   compare under random assignments — the simplifier must be sound. *)
type ast =
  | Leaf of int (* var index *)
  | Const of int64
  | Node of int * ast * ast

let rec gen_ast depth st =
  if depth = 0 || Random.State.int st 3 = 0 then
    if Random.State.bool st then Leaf (Random.State.int st 3)
    else Const (Random.State.int64 st 256L)
  else
    Node
      ( Random.State.int st 9,
        gen_ast (depth - 1) st,
        gen_ast (depth - 1) st )

let ops =
  [|
    (Expr.add, Bv.add); (Expr.sub, Bv.sub); (Expr.mul, Bv.mul);
    (Expr.band, Bv.logand); (Expr.bor, Bv.logor); (Expr.bxor, Bv.logxor);
    (Expr.shl, Bv.shl); (Expr.lshr, Bv.lshr); (Expr.ashr, Bv.ashr);
  |]

let rec ast_to_expr vars = function
  | Leaf i -> vars.(i)
  | Const v -> Expr.const (Bv.make ~width:8 v)
  | Node (op, a, b) ->
    (fst ops.(op)) (ast_to_expr vars a) (ast_to_expr vars b)

let rec ast_eval env = function
  | Leaf i -> env.(i)
  | Const v -> Bv.make ~width:8 v
  | Node (op, a, b) -> (snd ops.(op)) (ast_eval env a) (ast_eval env b)

let test_simplifier_soundness () =
  let st = Random.State.make [| 7 |] in
  let vars = Array.init 3 (fun i -> Expr.fresh_var (Printf.sprintf "v%d" i) 8) in
  for _ = 1 to 500 do
    let ast = gen_ast 4 st in
    let term = ast_to_expr vars ast in
    let env = Array.init 3 (fun _ -> Bv.make ~width:8 (Random.State.int64 st 256L)) in
    let lookup (v : Expr.var) =
      (* var names are v0..v2 *)
      env.(int_of_string (String.sub v.Expr.var_name 1 1))
    in
    let expected = ast_eval env ast in
    let actual = Expr.eval lookup term in
    if not (Bv.equal expected actual) then
      Alcotest.failf "simplifier unsound on %s: %s <> %s"
        (Expr.to_string term) (Bv.to_string expected) (Bv.to_string actual)
  done

(* ------------------------------------------------------------------ *)
(* Interval                                                            *)

let test_interval_unsat () =
  let x = Expr.fresh_var "x" 32 in
  let env = Interval.make_env () in
  let verdict =
    Interval.propagate env
      [ Expr.ult x (e_int 51); Expr.ugt x (e_int 100) ]
  in
  Alcotest.(check bool) "range conflict" true
    (verdict = Interval.Definitely_unsat)

let test_interval_refine () =
  let x = Expr.fresh_var "x" 32 in
  let env = Interval.make_env () in
  let verdict =
    Interval.propagate env [ Expr.ult x (e_int 10); Expr.ugt x (e_int 2) ]
  in
  Alcotest.(check bool) "feasible" true (verdict = Interval.Unknown);
  (match Expr.vars (Expr.add x (e_int 0)) with
   | [ v ] ->
     let itv = Interval.env_interval env v in
     Alcotest.(check int64) "lo" 3L itv.Interval.lo;
     Alcotest.(check int64) "hi" 9L itv.Interval.hi
   | _ -> Alcotest.fail "expected one var")

let test_interval_bounds_sound () =
  let st = Random.State.make [| 11 |] in
  let x = Expr.fresh_var "bx" 8 and y = Expr.fresh_var "by" 8 in
  for _ = 1 to 300 do
    let ast = gen_ast 3 st in
    let term = ast_to_expr [| x; y; x |] ast in
    let vx = Bv.make ~width:8 (Random.State.int64 st 256L) in
    let vy = Bv.make ~width:8 (Random.State.int64 st 256L) in
    let lookup (v : Expr.var) = if v.Expr.var_name = "bx" then vx else vy in
    let value = Expr.eval lookup term in
    let env = Interval.make_env () in
    let itv = Interval.bounds env term in
    if not (Interval.mem value itv) then
      Alcotest.failf "interval unsound: %s not in %s for %s"
        (Bv.to_string value)
        (Format.asprintf "%a" Interval.pp itv)
        (Expr.to_string term)
  done

(* ------------------------------------------------------------------ *)
(* SAT solver                                                          *)

let test_sat_simple () =
  let s = Sat.create () in
  let a = Sat.new_var s and b = Sat.new_var s in
  Sat.add_clause s [ a; b ];
  Sat.add_clause s [ -a; b ];
  Alcotest.(check bool) "sat" true (Sat.solve s = Sat.Sat);
  Alcotest.(check bool) "b true" true (Sat.value s b)

let test_sat_unsat () =
  let s = Sat.create () in
  let a = Sat.new_var s and b = Sat.new_var s in
  Sat.add_clause s [ a; b ];
  Sat.add_clause s [ a; -b ];
  Sat.add_clause s [ -a; b ];
  Sat.add_clause s [ -a; -b ];
  Alcotest.(check bool) "unsat" true (Sat.solve s = Sat.Unsat)

let test_sat_empty_clause () =
  let s = Sat.create () in
  ignore (Sat.new_var s);
  Sat.add_clause s [];
  Alcotest.(check bool) "unsat" true (Sat.solve s = Sat.Unsat)

let test_sat_tautology_dropped () =
  let s = Sat.create () in
  let a = Sat.new_var s in
  Sat.add_clause s [ a; -a ];
  Alcotest.(check bool) "sat" true (Sat.solve s = Sat.Sat)

(* Random 3-SAT cross-checked against brute force. *)
let brute_force_sat nvars clauses =
  let rec go assignment v =
    if v > nvars then
      List.for_all
        (fun clause ->
           List.exists
             (fun l ->
                let value = List.nth assignment (abs l - 1) in
                if l > 0 then value else not value)
             clause)
        clauses
    else go (assignment @ [ true ]) (v + 1) || go (assignment @ [ false ]) (v + 1)
  in
  go [] 1

let test_sat_random_vs_brute () =
  let st = Random.State.make [| 3 |] in
  for _ = 1 to 150 do
    let nvars = 2 + Random.State.int st 8 in
    let nclauses = 1 + Random.State.int st 30 in
    let clauses =
      List.init nclauses (fun _ ->
          List.init 3 (fun _ ->
              let v = 1 + Random.State.int st nvars in
              if Random.State.bool st then v else -v))
    in
    let s = Sat.create () in
    for _ = 1 to nvars do
      ignore (Sat.new_var s)
    done;
    List.iter (Sat.add_clause s) clauses;
    let got = Sat.solve s = Sat.Sat in
    let expected = brute_force_sat nvars clauses in
    if got <> expected then
      Alcotest.failf "sat mismatch on %d vars, %d clauses: got %b want %b"
        nvars nclauses got expected;
    (* When SAT, the model must satisfy every clause. *)
    if got then
      List.iter
        (fun clause ->
           let ok =
             List.exists
               (fun l ->
                  let value = Sat.value s (abs l) in
                  if l > 0 then value else not value)
               clause
           in
           if not ok then Alcotest.fail "model does not satisfy clause")
        clauses
  done

(* ------------------------------------------------------------------ *)
(* Solver pipeline                                                     *)

let test_solver_basic () =
  let x = Expr.fresh_var "sx" 32 and y = Expr.fresh_var "sy" 32 in
  let constraints =
    [
      Expr.ult x (e_int 51);
      Expr.ugt x (e_int 0);
      Expr.eq (Expr.add x y) (e_int 100);
    ]
  in
  (match Solver.check constraints with
   | Solver.Sat m ->
     Alcotest.(check bool) "model satisfies" true (Model.satisfies m constraints)
   | Solver.Unsat | Solver.Unknown _ -> Alcotest.fail "expected sat");
  Alcotest.(check bool) "unsat" false
    (Solver.is_sat [ Expr.ult x (e_int 5); Expr.ugt x (e_int 10) ])

let test_solver_empty_and_const () =
  Alcotest.(check bool) "empty is sat" true (Solver.is_sat []);
  Alcotest.(check bool) "true is sat" true (Solver.is_sat [ Expr.tru ]);
  Alcotest.(check bool) "false is unsat" false (Solver.is_sat [ Expr.fls ])

let test_solver_nonlinear () =
  let x = Expr.fresh_var "nx" 32 in
  (* x * x == 225 has solutions (15, ...); check via multiplication. *)
  match Solver.check [ Expr.eq (Expr.mul x x) (e_int 225) ] with
  | Solver.Sat m ->
    let v = Model.eval m x in
    let sq = Bv.mul v v in
    check_bv "model squares to 225" (Bv.of_int ~width:32 225) sq
  | Solver.Unsat | Solver.Unknown _ -> Alcotest.fail "expected sat"

(* Small-width random queries against brute-force enumeration. *)
let test_solver_random_vs_brute () =
  let st = Random.State.make [| 23 |] in
  let width = 4 in
  for _ = 1 to 60 do
    let x = Expr.fresh_var "rx" width and y = Expr.fresh_var "ry" width in
    let rand_const () = Expr.const (Bv.make ~width (Random.State.int64 st 16L)) in
    let rand_term () =
      match Random.State.int st 4 with
      | 0 -> x
      | 1 -> y
      | 2 -> Expr.add x y
      | _ -> Expr.band x (rand_const ())
    in
    let rand_cmp () =
      let a = rand_term () and b = rand_const () in
      match Random.State.int st 3 with
      | 0 -> Expr.eq a b
      | 1 -> Expr.ult a b
      | _ -> Expr.ugt a b
    in
    let constraints = List.init (1 + Random.State.int st 3) (fun _ -> rand_cmp ()) in
    let expected =
      let found = ref false in
      for vx = 0 to 15 do
        for vy = 0 to 15 do
          let lookup (v : Expr.var) =
            if v.Expr.var_name = "rx" then Bv.of_int ~width vx
            else Bv.of_int ~width vy
          in
          if List.for_all (Expr.eval_bool lookup) constraints then found := true
        done
      done;
      !found
    in
    let got =
      match Solver.check constraints with
      | Solver.Sat m ->
        Alcotest.(check bool) "model valid" true (Model.satisfies m constraints);
        true
      | Solver.Unsat -> false
      | Solver.Unknown msg -> Alcotest.failf "unknown: %s" msg
    in
    if got <> expected then
      Alcotest.failf "solver mismatch (got %b, want %b) on %s" got expected
        (String.concat " & " (List.map Expr.to_string constraints))
  done

let test_solver_cache () =
  Solver.clear_caches ();
  Solver.Stats.reset ();
  let x = Expr.fresh_var "cx" 32 in
  let q = [ Expr.ugt x (e_int 5); Expr.ult x (e_int 9) ] in
  ignore (Solver.check q);
  ignore (Solver.check q);
  let stats = Solver.Stats.get () in
  Alcotest.(check bool) "second query cached" true
    (stats.Solver.Stats.cache_hits >= 1)

let test_solver_shifts_and_division () =
  let x = Expr.fresh_var "dx" 32 in
  (match Solver.check [ Expr.eq (Expr.shl (e_int 1) x) (e_int 1024) ] with
   | Solver.Sat m -> check_bv "1 << x = 1024" (Bv.of_int ~width:32 10) (Model.eval m x)
   | Solver.Unsat | Solver.Unknown _ -> Alcotest.fail "expected sat");
  (match Solver.check [ Expr.eq (Expr.udiv (e_int 100) x) (e_int 25) ] with
   | Solver.Sat m ->
     check_bv "100 / x = 25" (Bv.of_int ~width:32 4) (Model.eval m x)
   | Solver.Unsat | Solver.Unknown _ -> Alcotest.fail "expected sat");
  (* division by zero convention is solver-visible: x udiv 0 = ones *)
  Alcotest.(check bool) "udiv by zero = ones" true
    (Solver.is_sat [ Expr.eq (Expr.udiv x (e_int 0)) (e_int (-1)) ])

(* ------------------------------------------------------------------ *)
(* Constraint-independence slicing                                     *)

let test_slice_partition () =
  let x = Expr.fresh_var "px" 32
  and y = Expr.fresh_var "py" 32
  and z = Expr.fresh_var "pz" 32 in
  let a = Expr.ult x (e_int 10)
  and b = Expr.ugt y (e_int 3)
  and c = Expr.eq (Expr.add x z) (e_int 7)
  and d = Expr.ult y (e_int 9) in
  (* a and c share x (transitively pulling in z); b and d share y. *)
  (match Smt.Slice.partition [ a; b; c; d ] with
   | [ s1; s2 ] ->
     Alcotest.(check (list string)) "slice of x,z keeps input order"
       (List.map Expr.to_string [ a; c ])
       (List.map Expr.to_string s1);
     Alcotest.(check (list string)) "slice of y keeps input order"
       (List.map Expr.to_string [ b; d ])
       (List.map Expr.to_string s2)
   | slices -> Alcotest.failf "expected 2 slices, got %d" (List.length slices));
  (* Transitive chaining: x~y and y~z must merge into one slice. *)
  let chain =
    [ Expr.ult x y; Expr.ult y z; Expr.ugt (Expr.fresh_var "pw" 32) (e_int 1) ]
  in
  Alcotest.(check (list int)) "chained sharing merges"
    [ 2; 1 ]
    (List.map List.length (Smt.Slice.partition chain))

let test_slice_partition_is_a_partition () =
  (* Random constraint sets: the slices must be a permutation-free
     partition (concatenation preserves multiset; variable sets of
     distinct slices are disjoint). *)
  let st = Random.State.make [| 31 |] in
  let vars = Array.init 6 (fun i -> Expr.fresh_var (Printf.sprintf "pp%d" i) 8) in
  for _ = 1 to 100 do
    let n = 1 + Random.State.int st 8 in
    let constraints =
      List.init n (fun _ ->
          let v = vars.(Random.State.int st 6) in
          let w = vars.(Random.State.int st 6) in
          Expr.ult (Expr.add v w)
            (Expr.const (Bv.make ~width:8 (Int64.of_int (1 + Random.State.int st 255)))))
    in
    let slices = Smt.Slice.partition constraints in
    let flat = List.concat slices in
    Alcotest.(check int) "no constraint lost or duplicated"
      (List.length constraints) (List.length flat);
    List.iter
      (fun c ->
         Alcotest.(check bool) "every constraint present" true
           (List.exists (Expr.equal c) flat))
      constraints;
    let var_sets = List.map (fun s -> Smt.Slice.vars s) slices in
    let rec disjoint = function
      | [] -> true
      | vs :: rest ->
        List.for_all
          (fun vs' ->
             not
               (List.exists
                  (fun (v : Expr.var) ->
                     List.exists (fun (v' : Expr.var) -> v.Expr.var_id = v'.Expr.var_id) vs')
                  vs))
          rest
        && disjoint rest
    in
    Alcotest.(check bool) "slice variable sets disjoint" true (disjoint var_sets)
  done

let test_solver_merge_soundness () =
  (* Many mutually independent slices: the merged model must satisfy the
     whole set, not just each slice in isolation. *)
  let constraints =
    List.concat_map
      (fun i ->
         let v = Expr.fresh_var (Printf.sprintf "mg%d" i) 32 in
         [ Expr.ugt v (e_int i); Expr.ult v (e_int (i + 10)) ])
      [ 1; 20; 300; 4000 ]
  in
  match Solver.check constraints with
  | Solver.Sat m ->
    Alcotest.(check bool) "merged model satisfies every slice" true
      (Model.satisfies m constraints)
  | Solver.Unsat | Solver.Unknown _ -> Alcotest.fail "expected sat"

let test_solver_slice_cache_accounting () =
  (* Appending a constraint over fresh variables must not invalidate
     the cached slices of the unchanged prefix. *)
  Solver.clear_caches ();
  Solver.Stats.reset ();
  let x = Expr.fresh_var "ha" 32 in
  let y = Expr.fresh_var "hb" 32 in
  let z = Expr.fresh_var "hc" 32 in
  let a = Expr.ult x (e_int 10) and b = Expr.ugt y (e_int 5) in
  ignore (Solver.check [ a; b ]);
  ignore (Solver.check [ a; b; Expr.eq z (e_int 3) ]);
  let stats = Solver.Stats.get () in
  Alcotest.(check bool)
    (Printf.sprintf "prefix slices hit the cache (%d hits)"
       stats.Solver.Stats.cache_hits)
    true
    (stats.Solver.Stats.cache_hits >= 2);
  Alcotest.(check bool) "slices were counted" true
    (stats.Solver.Stats.slices >= 5)

let test_independence_on_off_equivalent () =
  (* The slicing layer is an optimization: verdicts must be identical
     with and without it on random multi-variable queries. *)
  let st = Random.State.make [| 47 |] in
  let width = 4 in
  Fun.protect
    ~finally:(fun () ->
        Solver.set_independence true;
        Solver.clear_caches ())
    (fun () ->
       for _ = 1 to 40 do
         let x = Expr.fresh_var "ia" width in
         let y = Expr.fresh_var "ib" width in
         let rand_const () =
           Expr.const (Bv.make ~width (Random.State.int64 st 16L))
         in
         let rand_cmp v =
           match Random.State.int st 3 with
           | 0 -> Expr.eq v (rand_const ())
           | 1 -> Expr.ult v (rand_const ())
           | _ -> Expr.ugt v (rand_const ())
         in
         let constraints =
           List.init
             (1 + Random.State.int st 4)
             (fun _ -> rand_cmp (if Random.State.bool st then x else y))
         in
         Solver.set_independence true;
         Solver.clear_caches ();
         let on = Solver.is_sat constraints in
         Solver.set_independence false;
         Solver.clear_caches ();
         let off = Solver.is_sat constraints in
         if on <> off then
           Alcotest.failf "independence changed verdict (%b vs %b) on %s" on
             off
             (String.concat " & " (List.map Expr.to_string constraints))
       done)

(* ------------------------------------------------------------------ *)
(* SMT-LIB export                                                      *)

let test_smtlib_terms () =
  let x = Expr.fresh_var "q" 8 in
  let xname = Printf.sprintf "|q!%d|" (List.hd (Expr.vars x)).Expr.var_id in
  Alcotest.(check string) "bv literal" "(_ bv10 8)"
    (Smt.Smtlib.term (Expr.int ~width:8 10));
  (* commutative operands are canonicalized with the constant first *)
  Alcotest.(check string) "add"
    (Printf.sprintf "(bvadd (_ bv1 8) %s)" xname)
    (Smt.Smtlib.term (Expr.add x (Expr.int ~width:8 1)));
  Alcotest.(check string) "ult"
    (Printf.sprintf "(bvult %s (_ bv5 8))" xname)
    (Smt.Smtlib.term (Expr.ult x (Expr.int ~width:8 5)));
  Alcotest.(check string) "extract"
    (Printf.sprintf "((_ extract 3 0) %s)" xname)
    (Smt.Smtlib.term (Expr.extract ~hi:3 ~lo:0 x));
  Alcotest.(check string) "zext"
    (Printf.sprintf "((_ zero_extend 8) %s)" xname)
    (Smt.Smtlib.term (Expr.zext 16 x))

let test_smtlib_query_well_formed () =
  let x = Expr.fresh_var "qq" 32 and y = Expr.fresh_var "qr" 32 in
  let q =
    Smt.Smtlib.query
      [ Expr.ult x y; Expr.eq (Expr.add x y) (e_int 99) ]
  in
  (* balanced parentheses and the expected skeleton *)
  let depth = ref 0 and min_depth = ref 0 in
  String.iter
    (fun c ->
       if c = '(' then incr depth else if c = ')' then decr depth;
       if !depth < !min_depth then min_depth := !depth)
    q;
  Alcotest.(check int) "balanced" 0 !depth;
  Alcotest.(check int) "never negative" 0 !min_depth;
  let has s =
    let n = String.length s and m = String.length q in
    let rec go i = i + n <= m && (String.sub q i n = s || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "logic" true (has "(set-logic QF_BV)");
  Alcotest.(check bool) "declares x" true (has "(declare-const |qq!");
  Alcotest.(check bool) "declares y" true (has "(declare-const |qr!");
  Alcotest.(check bool) "asserts" true (has "(assert (bvult ");
  Alcotest.(check bool) "check-sat" true (has "(check-sat)")

let test_smtlib_model_values () =
  let x = Expr.fresh_var "qm" 16 in
  match Expr.vars x with
  | [ v ] ->
    let m = Model.add v (Bv.of_int ~width:16 300) Model.empty in
    (match Smt.Smtlib.model_values m with
     | [ line ] ->
       Alcotest.(check string) "define-fun"
         (Printf.sprintf "(define-fun |qm!%d| () (_ BitVec 16) (_ bv300 16))"
            v.Expr.var_id)
         line
     | _ -> Alcotest.fail "expected one binding")
  | _ -> Alcotest.fail "expected one var"

let test_model_defaults () =
  let x = Expr.fresh_var "mx" 16 in
  match Expr.vars x with
  | [ v ] ->
    check_bv "unbound var reads zero" (Bv.zero 16) (Model.find Model.empty v)
  | _ -> Alcotest.fail "expected one var"

(* ------------------------------------------------------------------ *)
(* LRU cache, per-query budgets and stats serialization                *)

let test_lru_eviction_order () =
  let l = Smt.Lru.create ~cap:2 () in
  Smt.Lru.put l 1 "a";
  Smt.Lru.put l 2 "b";
  (* Touch 1 so 2 becomes least-recently used. *)
  Alcotest.(check (option string)) "hit bumps" (Some "a") (Smt.Lru.find l 1);
  Smt.Lru.put l 3 "c";
  Alcotest.(check (option string)) "recent kept" (Some "a") (Smt.Lru.find l 1);
  Alcotest.(check (option string)) "lru evicted" None (Smt.Lru.find l 2);
  Alcotest.(check (option string)) "new kept" (Some "c") (Smt.Lru.find l 3);
  Alcotest.(check int) "one eviction" 1 (Smt.Lru.evictions l);
  Alcotest.(check int) "at capacity" 2 (Smt.Lru.length l)

let test_lru_replace_and_resize () =
  let l = Smt.Lru.create ~cap:3 () in
  List.iter (fun k -> Smt.Lru.put l k (string_of_int k)) [ 1; 2; 3 ];
  Smt.Lru.put l 2 "two";  (* replace, no eviction *)
  Alcotest.(check int) "replace keeps length" 3 (Smt.Lru.length l);
  Alcotest.(check int) "replace is not eviction" 0 (Smt.Lru.evictions l);
  Smt.Lru.set_capacity l 1;
  Alcotest.(check int) "shrink evicts" 1 (Smt.Lru.length l);
  Alcotest.(check int) "shrink counted" 2 (Smt.Lru.evictions l);
  Alcotest.(check (option string)) "mru survives shrink" (Some "two")
    (Smt.Lru.find l 2);
  Smt.Lru.clear l;
  Alcotest.(check int) "clear empties" 0 (Smt.Lru.length l);
  Alcotest.(check int) "clear not counted" 2 (Smt.Lru.evictions l)

let test_lru_unbounded () =
  let l = Smt.Lru.create ~cap:0 () in
  for k = 1 to 1000 do Smt.Lru.put l k k done;
  Alcotest.(check int) "nothing evicted" 0 (Smt.Lru.evictions l);
  Alcotest.(check int) "all kept" 1000 (Smt.Lru.length l)

let test_solver_cache_capacity_evictions () =
  Solver.clear_caches ();
  let before = (Solver.Stats.get ()).Solver.Stats.query_evictions in
  Solver.set_cache_capacity ~query:1 ();
  let q i =
    let x = Expr.fresh_var (Printf.sprintf "ev%d" i) 8 in
    ignore (Solver.check [ Expr.ult x (Expr.int ~width:8 5) ])
  in
  q 0; q 1; q 2;
  let after = (Solver.Stats.get ()).Solver.Stats.query_evictions in
  Solver.set_cache_capacity ~query:65536 ();
  Solver.clear_caches ();
  Alcotest.(check bool) "evictions counted in stats" true (after - before >= 2);
  let qsz, _ = Solver.cache_sizes () in
  Alcotest.(check int) "cache emptied" 0 qsz

(* x*x = 3 is unsat mod 2^16 (squares are 0, 1 or 4 mod 8) but neither
   constant folding nor interval propagation can see it, so the query
   reaches CDCL — large enough to hit the propagation-boundary polls. *)
let hard_query () =
  let x = Expr.fresh_var "hardq" 16 in
  [ Expr.eq (Expr.mul x x) (Expr.int ~width:16 3) ]

let test_solver_timeout_returns_unknown () =
  Solver.clear_caches ();
  let before = (Solver.Stats.get ()).Solver.Stats.sat_timeouts in
  (match Solver.check ~timeout_ms:0 (hard_query ()) with
   | Solver.Unknown _ -> ()
   | Solver.Sat _ -> Alcotest.fail "expected Unknown, got Sat"
   | Solver.Unsat -> Alcotest.fail "expected Unknown, got Unsat");
  let after = (Solver.Stats.get ()).Solver.Stats.sat_timeouts in
  Alcotest.(check bool) "timeout counted" true (after > before);
  (* Without the budget the same query settles. *)
  (match Solver.check (hard_query ()) with
   | Solver.Unsat -> ()
   | _ -> Alcotest.fail "x*x = 3 should be unsat");
  Solver.clear_caches ()

let test_solver_interrupt_returns_unknown () =
  Solver.clear_caches ();
  Solver.set_interrupt_check (fun () -> true);
  let r = Solver.check (hard_query ()) in
  Solver.set_interrupt_check (fun () -> false);
  Solver.clear_caches ();
  match r with
  | Solver.Unknown _ -> ()
  | Solver.Sat _ | Solver.Unsat -> Alcotest.fail "expected Unknown"

let test_solver_stats_json_roundtrip () =
  let s =
    { Solver.Stats.queries = 7; slices = 9; slice_hits = 4; cache_hits = 3;
      cex_hits = 1; query_evictions = 2; cex_evictions = 5;
      interval_unsat = 6; interval_sat = 8; sat_calls = 10;
      sat_conflicts = 11; sat_decisions = 12; sat_propagations = 13;
      sat_timeouts = 14; sat_retries = 15; scope_pushes = 16; scope_pops = 17;
      scope_reused = 18; scope_rebuilds = 19; time = 1.5; interval_time = 0.25;
      bitblast_time = 0.5; sat_time = 0.75 }
  in
  let s' = Solver.Stats.of_json (Solver.Stats.to_json s) in
  Alcotest.(check bool) "roundtrip" true (s = s');
  (* Missing fields default to zero (forward compatibility). *)
  let z = Solver.Stats.of_json (Obs.Json.Obj [ ("queries", Obs.Json.Int 3) ]) in
  Alcotest.(check int) "present field" 3 z.Solver.Stats.queries;
  Alcotest.(check int) "missing field" 0 z.Solver.Stats.sat_timeouts

(* ------------------------------------------------------------------ *)
(* Incremental solving: assumptions, scopes, the shared retry budget   *)

let test_sat_assumptions () =
  let s = Sat.create () in
  let a = Sat.new_var s and b = Sat.new_var s in
  Sat.add_clause s [ a; b ];
  Alcotest.(check bool) "sat under [a]" true
    (Sat.solve ~assumptions:[ a ] s = Sat.Sat);
  Alcotest.(check bool) "a honoured in model" true (Sat.value s a);
  Alcotest.(check bool) "sat under [-a]" true
    (Sat.solve ~assumptions:[ -a ] s = Sat.Sat);
  Alcotest.(check bool) "b carries the clause" true (Sat.value s b);
  Alcotest.(check bool) "contradictory assumptions" true
    (Sat.solve ~assumptions:[ a; -a ] s = Sat.Unsat);
  (* Make a <-> b, then refute a /\ -b under assumptions: the Unsat
     answer must not poison the instance for later calls. *)
  Sat.add_clause s [ -a; b ];
  Sat.add_clause s [ -b; a ];
  Alcotest.(check bool) "unsat under [a; -b]" true
    (Sat.solve ~assumptions:[ a; -b ] s = Sat.Unsat);
  Alcotest.(check bool) "still sat without assumptions" true
    (Sat.solve s = Sat.Sat);
  Alcotest.(check bool) "still sat under [a; b]" true
    (Sat.solve ~assumptions:[ a; b ] s = Sat.Sat)

let test_sat_perturb_after_growth () =
  (* Activity rescaling and the perturbation walk must stay bounded to
     live variables on an instance that grew between solves — the shape
     a Solver.Scope produces (encode, solve, encode more, solve). *)
  let s = Sat.create () in
  let a = Sat.new_var s and b = Sat.new_var s in
  Sat.add_clause s [ a; b ];
  Alcotest.(check bool) "sat small" true (Sat.solve ~assumptions:[ a ] s = Sat.Sat);
  let more = List.init 64 (fun _ -> Sat.new_var s) in
  List.iter (fun v -> Sat.add_clause s [ v; a ]) more;
  Alcotest.(check bool) "sat grown" true (Sat.solve s = Sat.Sat);
  Sat.perturb s 42L;
  Alcotest.(check bool) "sat after perturb" true (Sat.solve s = Sat.Sat);
  Alcotest.(check bool) "assumption unsat on grown instance" true
    (Sat.solve ~assumptions:[ -a; -(List.hd more) ] s = Sat.Unsat);
  Sat.perturb s 7L;
  Alcotest.(check bool) "reusable after unsat + perturb" true
    (Sat.solve s = Sat.Sat)

let test_scope_reuse () =
  Solver.clear_caches ();
  let scope = Solver.Scope.create () in
  let x = Expr.fresh_var "scope_x" 16 in
  let sq = Expr.mul x x in
  (* x*x = 5776 has solutions (+-76 and friends mod 2^16) that neither
     folding nor interval candidates find, so these queries genuinely
     exercise the retained CDCL instance. *)
  let c1 = Expr.eq sq (Expr.int ~width:16 5776) in
  Solver.Scope.push scope;
  Solver.Scope.assume scope c1;
  Alcotest.(check int) "one frame" 1 (Solver.Scope.depth scope);
  (match Solver.check ~scope [ c1 ] with
   | Solver.Sat m ->
     Alcotest.(check bool) "model satisfies" true (Model.satisfies m [ c1 ])
   | _ -> Alcotest.fail "expected Sat");
  (* A deeper query re-encodes nothing for c1. *)
  let c2 = Expr.ugt x (Expr.int ~width:16 1000) in
  Solver.Scope.push scope;
  Solver.Scope.assume scope c2;
  let before = (Solver.Stats.get ()).Solver.Stats.scope_reused in
  Solver.clear_caches ();
  (match Solver.check ~scope [ c2; c1 ] with
   | Solver.Sat m ->
     Alcotest.(check bool) "deeper model satisfies" true
       (Model.satisfies m [ c1; c2 ])
   | _ -> Alcotest.fail "expected Sat at depth 2");
  let after = (Solver.Stats.get ()).Solver.Stats.scope_reused in
  Alcotest.(check bool) "encoding reused" true (after > before);
  (* Pop to a sibling whose refutation runs under assumptions: the
     Unsat must leave the retained instance reusable. *)
  Solver.Scope.pop scope;
  let c3 = Expr.eq sq (Expr.int ~width:16 3) in
  Solver.Scope.push scope;
  Solver.Scope.assume scope c3;
  Solver.clear_caches ();
  (match Solver.check ~scope [ c3; c1 ] with
   | Solver.Unsat -> ()
   | _ -> Alcotest.fail "expected Unsat sibling");
  Solver.Scope.pop scope;
  Solver.Scope.push scope;
  Solver.Scope.assume scope c2;
  Solver.clear_caches ();
  (match Solver.check ~scope [ c2; c1 ] with
   | Solver.Sat _ -> ()
   | _ -> Alcotest.fail "instance poisoned by sibling Unsat");
  Solver.Scope.pop_to_root scope;
  Alcotest.(check int) "back at root" 0 (Solver.Scope.depth scope);
  Solver.clear_caches ()

let test_incremental_on_off_equivalent () =
  (* Incremental scope solving is an optimization: verdicts must match
     the scratch pipeline on random queries issued through a scope. *)
  let st = Random.State.make [| 48 |] in
  let width = 4 in
  Fun.protect
    ~finally:(fun () ->
        Solver.set_incremental true;
        Solver.clear_caches ())
    (fun () ->
       for _ = 1 to 40 do
         let x = Expr.fresh_var "inca" width in
         let y = Expr.fresh_var "incb" width in
         let rand_const () =
           Expr.const (Bv.make ~width (Random.State.int64 st 16L))
         in
         let rand_cmp v =
           match Random.State.int st 3 with
           | 0 -> Expr.eq v (rand_const ())
           | 1 -> Expr.ult v (rand_const ())
           | _ -> Expr.ugt v (rand_const ())
         in
         let constraints =
           List.init
             (1 + Random.State.int st 4)
             (fun _ ->
                rand_cmp
                  (let v = if Random.State.bool st then x else y in
                   if Random.State.bool st then v else Expr.mul v v))
         in
         let scope = Solver.Scope.create () in
         List.iter
           (fun c ->
              Solver.Scope.push scope;
              Solver.Scope.assume scope c)
           constraints;
         Solver.set_incremental true;
         Solver.clear_caches ();
         let on =
           match Solver.check ~scope constraints with
           | Solver.Sat _ -> true
           | Solver.Unsat -> false
           | Solver.Unknown m -> Alcotest.failf "unknown (on): %s" m
         in
         Solver.set_incremental false;
         Solver.clear_caches ();
         let off =
           match Solver.check ~scope constraints with
           | Solver.Sat _ -> true
           | Solver.Unsat -> false
           | Solver.Unknown m -> Alcotest.failf "unknown (off): %s" m
         in
         if on <> off then
           Alcotest.failf "incremental changed verdict (%b vs %b) on %s" on
             off
             (String.concat " & " (List.map Expr.to_string constraints))
       done)

let test_solver_timeout_budget_shared () =
  (* Regression for the per-query timeout contract: with a permanently
     stalling solver (each attempt burns up to 50ms) and 3 retries, a
     100ms budget must bound the whole retry loop at ~1x the budget —
     per-attempt deadlines would take ~200ms.  Deterministic: the chaos
     point fires at rate 1. *)
  Solver.clear_caches ();
  Fun.protect
    ~finally:(fun () ->
        Chaos.disable ();
        Solver.set_retries 0)
    (fun () ->
       Chaos.configure ~seed:0 [ (Chaos.Solver_stall, 1.0) ];
       Solver.set_retries 3;
       let before = Solver.Stats.get () in
       let t0 = Unix.gettimeofday () in
       let r = Solver.check ~timeout_ms:100 (hard_query ()) in
       let wall = Unix.gettimeofday () -. t0 in
       let after = Solver.Stats.get () in
       (match r with
        | Solver.Unknown _ -> ()
        | Solver.Sat _ | Solver.Unsat ->
          Alcotest.fail "expected Unknown under a permanent stall");
       Alcotest.(check bool)
         (Printf.sprintf "wall %.3fs stays within ~1x the 100ms budget" wall)
         true (wall < 0.18);
       Alcotest.(check bool) "denied retry still counted" true
         (after.Solver.Stats.sat_retries > before.Solver.Stats.sat_retries);
       Alcotest.(check bool) "stalls counted as timeouts" true
         (after.Solver.Stats.sat_timeouts > before.Solver.Stats.sat_timeouts))

let suite =
  [
    ("bv: make masks", `Quick, test_bv_make_masks);
    ("bv: signed view", `Quick, test_bv_signed);
    ("bv: wrapping arithmetic", `Quick, test_bv_wrap_arithmetic);
    ("bv: division conventions", `Quick, test_bv_div_conventions);
    ("bv: shifts", `Quick, test_bv_shifts);
    ("bv: extract/concat/extend", `Quick, test_bv_structure);
    ("bv: comparisons", `Quick, test_bv_compare);
    ("bv: invalid arguments", `Quick, test_bv_invalid);
    ("expr: hash consing", `Quick, test_expr_hash_consing);
    ("expr: constant folding", `Quick, test_expr_folding);
    ("expr: extract rewrites", `Quick, test_expr_extract_rewrites);
    ("expr: vars", `Quick, test_expr_vars);
    ("expr: eval", `Quick, test_expr_eval);
    ("expr: simplifier soundness (random)", `Quick, test_simplifier_soundness);
    ("interval: unsat detection", `Quick, test_interval_unsat);
    ("interval: refinement", `Quick, test_interval_refine);
    ("interval: bounds soundness (random)", `Quick, test_interval_bounds_sound);
    ("sat: simple", `Quick, test_sat_simple);
    ("sat: unsat", `Quick, test_sat_unsat);
    ("sat: empty clause", `Quick, test_sat_empty_clause);
    ("sat: tautology", `Quick, test_sat_tautology_dropped);
    ("sat: random vs brute force", `Quick, test_sat_random_vs_brute);
    ("solver: basic", `Quick, test_solver_basic);
    ("solver: empty and const", `Quick, test_solver_empty_and_const);
    ("solver: nonlinear", `Quick, test_solver_nonlinear);
    ("solver: random vs brute force", `Quick, test_solver_random_vs_brute);
    ("solver: query cache", `Quick, test_solver_cache);
    ("slice: partition crafted sets", `Quick, test_slice_partition);
    ("slice: partition is a partition (random)", `Quick,
     test_slice_partition_is_a_partition);
    ("solver: merged model soundness", `Quick, test_solver_merge_soundness);
    ("solver: per-slice cache accounting", `Quick,
     test_solver_slice_cache_accounting);
    ("solver: independence on/off equivalence", `Quick,
     test_independence_on_off_equivalent);
    ("solver: shifts and division", `Quick, test_solver_shifts_and_division);
    ("model: defaults", `Quick, test_model_defaults);
    ("smtlib: terms", `Quick, test_smtlib_terms);
    ("smtlib: query well-formed", `Quick, test_smtlib_query_well_formed);
    ("smtlib: model values", `Quick, test_smtlib_model_values);
    ("lru: eviction order", `Quick, test_lru_eviction_order);
    ("lru: replace and resize", `Quick, test_lru_replace_and_resize);
    ("lru: unbounded", `Quick, test_lru_unbounded);
    ("solver: cache capacity and evictions", `Quick,
     test_solver_cache_capacity_evictions);
    ("solver: per-query timeout", `Quick, test_solver_timeout_returns_unknown);
    ("solver: interrupt hook", `Quick, test_solver_interrupt_returns_unknown);
    ("solver: stats JSON roundtrip", `Quick, test_solver_stats_json_roundtrip);
    ("sat: assumptions", `Quick, test_sat_assumptions);
    ("sat: perturb after growth", `Quick, test_sat_perturb_after_growth);
    ("scope: encoding reuse and sibling unsat", `Quick, test_scope_reuse);
    ("solver: incremental on/off equivalence", `Quick,
     test_incremental_on_off_equivalent);
    ("solver: retry budget is per-query", `Quick,
     test_solver_timeout_budget_shared);
  ]
  @ bv_props
