(* Single alcotest entry point aggregating every library's suite. *)

let () =
  Alcotest.run "symsysc"
    [
      ("smt", Test_smt.suite);
      ("pk", Test_pk.suite);
      ("pk-trace", Test_trace.suite);
      ("obs", Test_obs.suite);
      ("symex", Test_symex.suite);
      ("tlm", Test_tlm.suite);
      ("plic", Test_plic.suite);
      ("clint", Test_clint.suite);
      ("uart", Test_uart.suite);
      ("differential", Test_differential.suite);
      ("integration", Test_core.suite);
      ("resilience", Test_resilience.suite);
      ("pool", Test_pool.suite);
      ("incremental", Test_incremental.suite);
      ("snapshots", Test_snapshots.suite);
      ("chaos", Test_chaos.suite);
      ("deepobs", Test_deepobs.suite);
      ("distributed", Test_distributed.suite);
      ("service", Test_service.suite);
    ]
