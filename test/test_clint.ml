(* Tests for the CLINT core-local interruptor: software interrupts,
   the level-triggered timer against the free-running mtime counter,
   and a symbolic end-to-end property over the comparator. *)

module Expr = Smt.Expr
module Bv = Smt.Bv
module Value = Symex.Value
module Engine = Symex.Engine
module Payload = Tlm.Payload
module Sc_time = Pk.Sc_time

let tick = Clint.Config.fe310.Clint.Config.tick

type rig = {
  sched : Pk.Scheduler.t;
  clint : Clint.t;
  port : Clint.Port.t;
}

let make_rig ?policy () =
  let sched = Pk.Scheduler.create () in
  let clint = Clint.create ?policy Clint.Config.fe310 sched in
  let port = Clint.Port.create () in
  Clint.connect clint port;
  Pk.Scheduler.run_ready sched;
  { sched; clint; port }

let write32 rig offset value =
  let p =
    Payload.make_write32 ~addr:(Value.of_int offset) ~value:(Value.of_int value)
  in
  ignore (Clint.transport rig.clint p Sc_time.zero)

let write64 rig offset value =
  let v = Expr.const (Bv.make ~width:64 value) in
  let data = Array.init 8 (fun i -> Expr.extract ~hi:((8 * i) + 7) ~lo:(8 * i) v) in
  let p =
    Payload.make_write ~addr:(Value.of_int offset) ~len:(Value.of_int 8) ~data
  in
  ignore (Clint.transport rig.clint p Sc_time.zero)

let read64 rig offset =
  let p =
    Payload.make_read ~addr:(Value.of_int offset) ~len:(Value.of_int 8)
  in
  ignore (Clint.transport rig.clint p Sc_time.zero);
  let byte i =
    match Expr.to_bv p.Payload.data.(i) with
    | Some v -> Bv.to_int64 v
    | None -> Alcotest.fail "expected concrete byte"
  in
  let rec go i acc =
    if i < 0 then acc
    else go (i - 1) (Int64.logor (Int64.shift_left (byte i) (8 * i)) acc)
  in
  go 7 0L

let test_quiet_at_boot () =
  let rig = make_rig () in
  Alcotest.(check bool) "no software irq" false rig.port.Clint.Port.software_pending;
  Alcotest.(check bool) "no timer irq" false rig.port.Clint.Port.timer_pending

let test_msip_level () =
  let rig = make_rig () in
  write32 rig Clint.msip_base 1;
  Alcotest.(check bool) "raised" true rig.port.Clint.Port.software_pending;
  write32 rig Clint.msip_base 0;
  Alcotest.(check bool) "cleared" false rig.port.Clint.Port.software_pending

let test_mtime_follows_clock () =
  let rig = make_rig () in
  Alcotest.(check int64) "zero at boot" 0L (read64 rig Clint.mtime_base);
  (* Advance 100 ticks of simulated time via a dummy event. *)
  let ev = Pk.Event.make "pace" in
  Pk.Scheduler.notify_at rig.sched ev (Sc_time.mul_int tick 100);
  Pk.Scheduler.run_until rig.sched (Sc_time.mul_int tick 100);
  Alcotest.(check int64) "100 ticks later" 100L (read64 rig Clint.mtime_base)

let test_timer_fires_at_match () =
  let rig = make_rig () in
  write64 rig Clint.mtimecmp_base 5L;
  Alcotest.(check bool) "not before" false rig.port.Clint.Port.timer_pending;
  Pk.Scheduler.run_until rig.sched (Sc_time.mul_int tick 10);
  Alcotest.(check bool) "fired" true rig.port.Clint.Port.timer_pending;
  Alcotest.(check int64) "exactly at the match instant"
    (Sc_time.to_ps (Sc_time.mul_int tick 5))
    (Sc_time.to_ps rig.port.Clint.Port.last_timer_time)

let test_timer_immediate_when_past () =
  let rig = make_rig () in
  write64 rig Clint.mtimecmp_base 0L;
  Alcotest.(check bool) "level asserted immediately" true
    rig.port.Clint.Port.timer_pending

let test_timer_retracts () =
  let rig = make_rig () in
  write64 rig Clint.mtimecmp_base 0L;
  Alcotest.(check bool) "asserted" true rig.port.Clint.Port.timer_pending;
  write64 rig Clint.mtimecmp_base 1_000L;
  Alcotest.(check bool) "retracted by a future comparator" false
    rig.port.Clint.Port.timer_pending

let test_far_comparator_not_scheduled () =
  let rig = make_rig () in
  write64 rig Clint.mtimecmp_base Int64.max_int;
  Alcotest.(check bool) "beyond horizon: nothing pending" false
    rig.port.Clint.Port.timer_pending;
  (* and the scheduler must not have an (astronomically far) wakeup *)
  Alcotest.(check (option int64)) "no wakeup armed" None
    (Option.map Sc_time.to_ps (Pk.Scheduler.next_wake_time rig.sched))

let test_mtime_read_only () =
  let rig = make_rig () in
  let p =
    Payload.make_write32 ~addr:(Value.of_int Clint.mtime_base)
      ~value:(Value.of_int 7)
  in
  ignore (Clint.transport rig.clint p Sc_time.zero);
  Alcotest.(check bool) "write rejected" true
    (p.Payload.response = Payload.Command_error)

let test_original_policy_applies () =
  (* The register-dispatch bug family of the paper applies to any
     peripheral built on the same machinery. *)
  let rig = make_rig ~policy:Tlm.Register.Original () in
  let p =
    Payload.make_read ~addr:(Value.of_int 0x2) ~len:(Value.of_int 4)
  in
  Alcotest.check_raises "misaligned read aborts"
    (Engine.Check_failed "reg:align") (fun () ->
        ignore (Clint.transport rig.clint p Sc_time.zero))

(* Symbolic end-to-end property: for every comparator value in 1..5 the
   timer fires exactly at the comparator instant, never earlier. *)
let test_symbolic_comparator () =
  let report =
    Engine.Session.run (Engine.Session.make ()) (fun () ->
        let sched = Pk.Scheduler.create () in
        let clint = Clint.create Clint.Config.fe310 sched in
        let port = Clint.Port.create () in
        Clint.connect clint port;
        Pk.Scheduler.run_ready sched;
        let cmp = Engine.fresh "mtimecmp" 64 in
        Engine.assume
          (Expr.and_
             (Expr.uge cmp (Expr.int ~width:64 1))
             (Expr.ule cmp (Expr.int ~width:64 5)));
        let data =
          Array.init 8 (fun i -> Expr.extract ~hi:((8 * i) + 7) ~lo:(8 * i) cmp)
        in
        let p =
          Payload.make_write ~addr:(Value.of_int Clint.mtimecmp_base)
            ~len:(Value.of_int 8) ~data
        in
        ignore (Clint.transport clint p Sc_time.zero);
        Engine.check ~site:"clint:not-early" ~message:"timer fired early"
          (Expr.bool (not port.Clint.Port.timer_pending));
        Pk.Scheduler.run_until sched (Sc_time.mul_int tick 10);
        Engine.check ~site:"clint:fired" ~message:"timer never fired"
          (Expr.bool port.Clint.Port.timer_pending);
        let fired_tick =
          Int64.div
            (Sc_time.to_ps port.Clint.Port.last_timer_time)
            (Sc_time.to_ps tick)
        in
        Engine.check ~site:"clint:exact" ~message:"timer fired at a wrong tick"
          (Expr.eq (Expr.const (Bv.make ~width:64 fired_tick)) cmp))
  in
  Alcotest.(check int) "no property violations" 0
    (List.length report.Engine.errors);
  Alcotest.(check int) "one path per comparator value" 5
    report.Engine.paths_completed

let suite =
  [
    ("quiet at boot", `Quick, test_quiet_at_boot);
    ("msip is level triggered", `Quick, test_msip_level);
    ("mtime follows the clock", `Quick, test_mtime_follows_clock);
    ("timer fires at the match instant", `Quick, test_timer_fires_at_match);
    ("timer immediate on past comparator", `Quick, test_timer_immediate_when_past);
    ("timer retracts on future comparator", `Quick, test_timer_retracts);
    ("far comparator is not scheduled", `Quick, test_far_comparator_not_scheduled);
    ("mtime is read-only", `Quick, test_mtime_read_only);
    ("original register policy applies", `Quick, test_original_policy_applies);
    ("symbolic comparator property", `Quick, test_symbolic_comparator);
  ]
