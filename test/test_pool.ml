(* Parallel exploration tests.

   The property the worker pool promises is the DESIGN.md one: a run
   with N workers reaches the same verdict, bug sites and exhausted
   flag as the single-worker run of the same session — and, because
   every run here is exhaustive, the same path totals and instruction
   count too (leaf sets are order-independent).  On top of that:
   master-side fault tolerance (a worker SIGKILLed mid-unit), parallel
   checkpoint/resume equivalence across worker counts, and the
   reproducibility of the parallel random-testing baseline. *)

module Engine = Symex.Engine
module Search = Symex.Search
module Error = Symex.Error
module Decision = Symex.Decision
module Pool = Symex.Pool
module Expr = Smt.Expr
module Verify = Symsysc.Verify
module Report = Symsysc.Report

let scenario ?strategy ?workers () =
  Verify.scenario ~num_sources:4 ~t5_max_len:8 ?strategy ?workers ()

let strategies =
  [ ("dfs", Search.Dfs);
    ("bfs", Search.Bfs);
    ("random", Search.Random_path 42);
    ("cover-new", Search.Cover_new) ]

let tests = [ "t1"; "t2"; "t3"; "t4"; "t5" ]

(* The pool de-duplicates errors by (site, kind) while the sequential
   engine records one per failing path, so compare error identity, not
   multiplicity. *)
let fingerprint (r : Report.t) =
  let e = r.Report.engine in
  ( r.Report.verdict,
    e.Engine.paths,
    e.Engine.paths_completed,
    e.Engine.paths_errored,
    e.Engine.paths_infeasible,
    e.Engine.paths_unknown,
    e.Engine.instructions,
    e.Engine.exhausted,
    List.sort_uniq compare
      (List.map
         (fun (err : Error.t) ->
            (err.Error.site, Error.kind_to_string err.Error.kind))
         e.Engine.errors) )

let check_equiv strategy name () =
  let seq = Verify.run_test (scenario ~strategy ()) name in
  Alcotest.(check int) "sequential run reports one worker" 1
    seq.Report.engine.Engine.workers;
  List.iter
    (fun workers ->
       let par = Verify.run_test (scenario ~strategy ~workers ()) name in
       Alcotest.(check int)
         (Printf.sprintf "report records %d workers" workers)
         workers par.Report.engine.Engine.workers;
       Alcotest.(check bool)
         (Printf.sprintf "fingerprint equals sequential at %d workers" workers)
         true
         (fingerprint par = fingerprint seq))
    [ 2; 4 ]

let equiv_cases =
  List.concat_map
    (fun (sname, strategy) ->
       List.map
         (fun name ->
            ( Printf.sprintf "parallel equivalence: %s/%s" sname name,
              `Slow,
              check_equiv strategy name ))
         tests)
    strategies

(* ------------------------------------------------------------------ *)
(* Master-side fault tolerance                                         *)

let unit_ok ?(forks = []) () =
  { Pool.outcome = Pool.Unit_completed; forks; errors = []; visits = [];
    instructions = 1; degraded = false; solver = Smt.Solver.Stats.zero;
    requeue = None; chaos = [];
    coverage = Obs.Coverage.zero; profile = Obs.Profile.zero;
    events = []; events_dropped = 0;
    snapshots_taken = 0; snapshot_restores = 0; replay_fallbacks = 0;
    instructions_saved = 0 }

(* A worker SIGKILLed in the middle of a unit must have its prefix
   re-queued and served by a surviving worker.  The exec callback runs
   in the forked workers, so a flag file distinguishes the first
   execution of the doomed unit (die) from its re-run (complete). *)
let test_worker_death_requeued () =
  let flag = Filename.temp_file "symsysc_kill" ".flag" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove flag with Sys_error _ -> ())
    (fun () ->
       let config =
         { Pool.workers = 2; strategy = Search.Dfs;
           limits = Engine.no_limits; stop_after_errors = None;
           label = "kill-test"; heartbeat_ms = None; max_unit_crashes = 3;
           listen = None; lease_ms = None; cookie = None }
       in
       let exec ~prefix =
         match Array.to_list prefix with
         | [] ->
           unit_ok
             ~forks:
               [ ("root", [| Decision.Dir false |]);
                 ("root", [| Decision.Dir true |]) ]
             ()
         | [ Decision.Dir true ] when Sys.file_exists flag ->
           (try Sys.remove flag with Sys_error _ -> ());
           Unix.kill (Unix.getpid ()) Sys.sigkill;
           assert false
         | _ -> unit_ok ()
       in
       let r = Pool.run config ~exec () in
       Alcotest.(check int) "one worker death" 1 r.Pool.r_worker_deaths;
       Alcotest.(check bool) "the in-flight unit was re-queued" true
         (r.Pool.r_requeued >= 1);
       Alcotest.(check int) "all three units completed" 3 r.Pool.r_completed;
       Alcotest.(check int) "logical path count unaffected" 3 r.Pool.r_paths;
       Alcotest.(check int) "re-run means an extra dispatch" 4
         r.Pool.r_dispatched;
       Alcotest.(check int) "no errors" 0 (List.length r.Pool.r_errors);
       Alcotest.(check bool) "run still counts as exhaustive" true
         r.Pool.r_exhausted)

(* ------------------------------------------------------------------ *)
(* Checkpoint/resume composes with workers                             *)

let with_session sc f = { sc with Verify.session = f sc.Verify.session }

(* Truncate a 2-worker run by a path budget, checkpoint it, resume with
   4 workers: same fingerprint as the uninterrupted parallel run. *)
let test_parallel_resume_equiv () =
  let sc = scenario ~workers:2 () in
  let straight = Verify.run_test sc "t4" in
  let saved = ref None in
  let policy =
    { Symex.Checkpoint.write = (fun ck -> saved := Some ck);
      every_s = infinity }
  in
  let truncated_sc =
    with_session sc (fun s ->
        { s with
          Engine.Session.limits =
            { Engine.no_limits with Engine.max_paths = Some 5 };
          checkpoint = Some policy })
  in
  let truncated = Verify.run_test truncated_sc "t4" in
  Alcotest.(check bool) "truncated run stopped early" true
    (truncated.Report.engine.Engine.stop_reason <> None);
  match !saved with
  | None -> Alcotest.fail "no checkpoint written"
  | Some ck ->
    let resumed_sc =
      with_session
        (scenario ~workers:4 ())
        (fun s -> { s with Engine.Session.resume = Some ck })
    in
    let resumed = Verify.run_test resumed_sc "t4" in
    Alcotest.(check bool) "resumed run exhausted" true
      resumed.Report.engine.Engine.exhausted;
    Alcotest.(check bool)
      "resumed fingerprint equals uninterrupted parallel run" true
      (fingerprint resumed = fingerprint straight)

(* ------------------------------------------------------------------ *)
(* Parallel random-testing baseline                                    *)

let e8 v = Expr.int ~width:8 v

(* Fails on roughly 6% of trials, so a few hundred per worker suffice. *)
let random_body () =
  let x = Engine.fresh "x" 8 in
  Engine.check ~site:"random:rare" (Expr.ult x (e8 240))

let failure_key (r : Engine.random_report) =
  Option.map
    (fun ((e : Error.t), trial) -> (e.Error.site, trial))
    r.Engine.failure

let test_random_workers_reproducible () =
  let campaign () =
    Engine.random_test ~seed:7 ~max_trials:600 ~workers:2 random_body
  in
  let r1 = campaign () in
  let r2 = campaign () in
  Alcotest.(check int) "workers recorded" 2 r1.Engine.workers;
  Alcotest.(check int) "trials reproducible" r1.Engine.trials r2.Engine.trials;
  Alcotest.(check int) "rejections reproducible" r1.Engine.rejected
    r2.Engine.rejected;
  Alcotest.(check (option (pair string int))) "failure reproducible"
    (failure_key r1) (failure_key r2);
  Alcotest.(check bool) "the rare failure is found" true
    (r1.Engine.failure <> None)

let test_random_workers_streams_differ () =
  (* Worker streams are derived from the seed, not shared with the
     sequential RNG — different worker counts are different (but each
     reproducible) campaigns. *)
  let seq = Engine.random_test ~seed:7 ~max_trials:600 random_body in
  Alcotest.(check int) "sequential campaign reports one worker" 1
    seq.Engine.workers;
  Alcotest.(check bool) "sequential campaign also finds it" true
    (seq.Engine.failure <> None)

(* ------------------------------------------------------------------ *)
(* fork_map plumbing                                                   *)

let test_fork_map () =
  let results = Pool.fork_map ~workers:3 (fun i -> Obs.Json.Int (i * 10)) in
  Alcotest.(check int) "three results" 3 (List.length results);
  List.iteri
    (fun i r ->
       match r with
       | Ok (Obs.Json.Int n) ->
         Alcotest.(check int) "results in index order" (i * 10) n
       | Ok _ -> Alcotest.fail "unexpected json shape"
       | Error e -> Alcotest.fail e)
    results

let test_fork_map_dead_child () =
  let results =
    Pool.fork_map ~workers:2 (fun i ->
        if i = 0 then Unix.kill (Unix.getpid ()) Sys.sigkill;
        Obs.Json.Int i)
  in
  match results with
  | [ Error _; Ok (Obs.Json.Int 1) ] -> ()
  | _ -> Alcotest.fail "expected child 0 dead, child 1 reporting"

let suite =
  equiv_cases
  @ [
      ("pool: worker killed mid-unit is re-queued", `Quick,
       test_worker_death_requeued);
      ("pool: parallel checkpoint/resume equivalence", `Slow,
       test_parallel_resume_equiv);
      ("random: parallel campaign reproducible", `Quick,
       test_random_workers_reproducible);
      ("random: sequential campaign unchanged", `Quick,
       test_random_workers_streams_differ);
      ("fork_map: ordered results", `Quick, test_fork_map);
      ("fork_map: dead child reported", `Quick, test_fork_map_dead_child);
    ]
