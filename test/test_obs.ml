(* The telemetry layer: sink semantics, exporter output structure
   (Chrome trace JSON, JSONL, Prometheus text), metrics registry, and
   end-to-end event capture from an engine run, the PK scheduler and
   the TLM router. *)

module Engine = Symex.Engine
module Expr = Smt.Expr

(* ------------------------------------------------------------------ *)
(* A minimal JSON parser — just enough to validate exporter output.    *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Bad_json of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg = raise (Bad_json (Printf.sprintf "%s at %d" msg !pos)) in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') -> advance (); skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal word value =
    String.iter expect word;
    value
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
         | Some 'n' -> Buffer.add_char buf '\n'; advance ()
         | Some 't' -> Buffer.add_char buf '\t'; advance ()
         | Some 'r' -> Buffer.add_char buf '\r'; advance ()
         | Some ('"' | '\\' | '/') ->
           Buffer.add_char buf (Option.get (peek ())); advance ()
         | Some 'u' ->
           advance ();
           for _ = 1 to 4 do
             (match peek () with
              | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> advance ()
              | _ -> fail "bad \\u escape")
           done;
           Buffer.add_char buf '?'
         | _ -> fail "bad escape");
        go ()
      | Some c -> Buffer.add_char buf c; advance (); go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> num_char c | None -> false) do
      advance ()
    done;
    if !pos = start then fail "expected number";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin advance (); Obj [] end
      else begin
        let rec members acc =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); members ((key, v) :: acc)
          | Some '}' -> advance (); Obj (List.rev ((key, v) :: acc))
          | _ -> fail "expected , or }"
        in
        members []
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin advance (); Arr [] end
      else begin
        let rec elements acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); elements (v :: acc)
          | Some ']' -> advance (); Arr (List.rev (v :: acc))
          | _ -> fail "expected , or ]"
        in
        elements []
      end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
    | None -> fail "unexpected end"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let string_member key j =
  match member key j with Some (Str s) -> Some s | _ -> None

(* ------------------------------------------------------------------ *)
(* Helpers                                                             *)

(* Capture the events emitted while [f] runs. *)
let capture f =
  Obs.Sink.reset ();
  let r = Obs.Export.recorder () in
  let result = Fun.protect ~finally:(fun () -> Obs.Sink.reset ()) f in
  (Obs.Export.events r, result)

let names events = List.map (fun (e : Obs.Event.t) -> e.Obs.Event.name) events
let cats events = List.map (fun (e : Obs.Event.t) -> e.Obs.Event.cat) events

(* A tiny exploration: one symbolic branch, two completed paths. *)
let two_path_testbench () =
  let x = Engine.fresh "obs_x" 8 in
  if Engine.branch ~site:"obs:test" (Expr.ult x (Expr.int ~width:8 16)) then
    ignore (Expr.add x x)
  else ignore (Expr.sub x x)

(* ------------------------------------------------------------------ *)
(* Sink                                                                *)

let test_sink_disabled_without_subscribers () =
  Obs.Sink.reset ();
  Alcotest.(check bool) "disabled with no subscribers" false (Obs.Sink.on ());
  Obs.Sink.instant ~cat:"t" "dropped-silently";
  let id = Obs.Sink.subscribe (fun _ -> ()) in
  Alcotest.(check bool) "enabled after subscribe" true (Obs.Sink.on ());
  Obs.Sink.unsubscribe id;
  Alcotest.(check bool) "disabled after unsubscribe" false (Obs.Sink.on ())

let test_sink_with_span () =
  let events, value =
    capture (fun () ->
        Obs.Sink.with_span ~cat:"t" "work" (fun () ->
            Obs.Sink.instant ~cat:"t" "inner";
            42))
  in
  Alcotest.(check int) "result passes through" 42 value;
  Alcotest.(check (list string)) "inner then span" [ "inner"; "work" ]
    (names events);
  match events with
  | [ _; { Obs.Event.kind = Obs.Event.Complete dur; ts; _ } ] ->
    Alcotest.(check bool) "non-negative duration" true (dur >= 0.0);
    Alcotest.(check bool) "stamped at start" true (ts >= 0.0)
  | _ -> Alcotest.fail "expected a Complete span"

(* ------------------------------------------------------------------ *)
(* Engine / solver / kernel / tlm event capture                        *)

let test_engine_events () =
  let events, report =
    capture (fun () -> Engine.Session.run (Engine.Session.make ()) two_path_testbench)
  in
  Alcotest.(check int) "two paths" 2 report.Engine.paths;
  let ns = names events in
  List.iter
    (fun expected ->
       Alcotest.(check bool) ("has " ^ expected) true (List.mem expected ns))
    [ "run:start"; "path"; "fork"; "query"; "run:end" ];
  (* Every path span is balanced. *)
  let count name k =
    List.length
      (List.filter
         (fun (e : Obs.Event.t) ->
            e.Obs.Event.name = name && e.Obs.Event.kind = k)
         events)
  in
  Alcotest.(check int) "path begins" 2 (count "path" Obs.Event.Span_begin);
  Alcotest.(check int) "path ends" 2 (count "path" Obs.Event.Span_end);
  (* Timestamps are monotone. *)
  let rec monotone = function
    | (a : Obs.Event.t) :: (b : Obs.Event.t) :: rest ->
      a.Obs.Event.ts <= b.Obs.Event.ts && monotone (b :: rest)
    | _ -> true
  in
  Alcotest.(check bool) "monotone timestamps" true
    (monotone
       (List.filter
          (fun (e : Obs.Event.t) ->
             match e.Obs.Event.kind with
             | Obs.Event.Complete _ -> false  (* backdated to span start *)
             | _ -> true)
          events))

let test_scheduler_events () =
  let events, () =
    capture (fun () ->
        let sched = Pk.Scheduler.create () in
        let ev = Pk.Event.make "obs-ev" in
        Pk.Scheduler.spawn sched
          (Pk.Process.make "obs-proc" (fun () -> Pk.Process.Wait_event ev));
        Pk.Scheduler.run_ready sched;
        Pk.Scheduler.notify_at sched ev (Pk.Sc_time.ns 10);
        ignore (Pk.Scheduler.step sched);
        Pk.Scheduler.notify_delta sched ev;
        Pk.Scheduler.run_ready sched)
  in
  let ns = names events in
  List.iter
    (fun expected ->
       Alcotest.(check bool) ("has " ^ expected) true (List.mem expected ns))
    [ "resume"; "event:fired"; "time-advance"; "delta-cycle" ];
  Alcotest.(check bool) "all kernel category" true
    (List.for_all (fun c -> c = "kernel") (cats events))

let test_router_events () =
  let events, () =
    capture (fun () ->
        let router = Tlm.Router.create ~name:"obs-bus" () in
        Tlm.Router.add_target router ~name:"mem" ~base:0 ~size:16
          (fun p delay ->
             p.Tlm.Payload.response <- Tlm.Payload.Ok_response;
             delay);
        let p =
          Tlm.Payload.make_write32 ~addr:(Symex.Value.of_int 4)
            ~value:(Symex.Value.of_int 7)
        in
        ignore (Tlm.Router.transport router p Pk.Sc_time.zero))
  in
  let txn =
    List.filter (fun (e : Obs.Event.t) -> e.Obs.Event.name = "txn") events
  in
  (match txn with
   | [ { Obs.Event.kind = Obs.Event.Span_begin; _ };
       ({ Obs.Event.kind = Obs.Event.Span_end; _ } as e) ] ->
     Alcotest.(check (option string)) "target recorded" (Some "mem")
       (List.assoc_opt "target" e.Obs.Event.args
        |> Option.map (function Obs.Event.Str s -> s | _ -> "?"))
   | _ -> Alcotest.fail "expected one balanced txn span");
  Alcotest.(check bool) "tlm category present" true
    (List.mem "tlm" (cats events))

(* ------------------------------------------------------------------ *)
(* Exporters                                                           *)

let captured_run_events () =
  fst (capture (fun () -> Engine.Session.run (Engine.Session.make ()) two_path_testbench))

let test_chrome_trace_structure () =
  let events = captured_run_events () in
  let doc = parse_json (Obs.Export.to_chrome events) in
  let trace_events =
    match member "traceEvents" doc with
    | Some (Arr l) -> l
    | _ -> Alcotest.fail "no traceEvents array"
  in
  Alcotest.(check bool) "non-empty" true (trace_events <> []);
  (* metadata rows + one row per event *)
  let data_rows =
    List.filter (fun e -> string_member "ph" e <> Some "M") trace_events
  in
  Alcotest.(check int) "one row per event" (List.length events)
    (List.length data_rows);
  List.iter
    (fun row ->
       Alcotest.(check bool) "has name" true (string_member "name" row <> None);
       Alcotest.(check bool) "has ph" true (string_member "ph" row <> None);
       (match string_member "ph" row with
        | Some ("B" | "E" | "i" | "X" | "C" | "M") -> ()
        | Some ph -> Alcotest.failf "unexpected phase %s" ph
        | None -> ());
       match member "ts" row with
       | Some (Num ts) ->
         Alcotest.(check bool) "ts >= 0" true (ts >= 0.0)
       | _ -> Alcotest.fail "missing ts")
    data_rows;
  (* X rows carry a duration. *)
  List.iter
    (fun row ->
       if string_member "ph" row = Some "X" then
         match member "dur" row with
         | Some (Num d) -> Alcotest.(check bool) "dur >= 0" true (d >= 0.0)
         | _ -> Alcotest.fail "X row without dur")
    data_rows;
  (* Thread-name metadata covers every category in the stream. *)
  let meta_names =
    List.filter_map
      (fun row ->
         if string_member "ph" row = Some "M" then
           Option.bind (member "args" row) (string_member "name")
         else None)
      trace_events
  in
  List.iter
    (fun c ->
       Alcotest.(check bool) ("thread for " ^ c) true (List.mem c meta_names))
    (List.sort_uniq String.compare (cats events))

let test_jsonl_structure () =
  let events = captured_run_events () in
  let lines =
    String.split_on_char '\n' (Obs.Export.to_jsonl events)
    |> List.filter (fun l -> l <> "")
  in
  Alcotest.(check int) "one line per event" (List.length events)
    (List.length lines);
  List.iter
    (fun line ->
       let j = parse_json line in
       Alcotest.(check bool) "is object" true
         (match j with Obj _ -> true | _ -> false);
       List.iter
         (fun key ->
            Alcotest.(check bool) ("has " ^ key) true (member key j <> None))
         [ "ts"; "cat"; "name"; "ph"; "args" ])
    lines

let test_json_escaping () =
  Obs.Sink.reset ();
  let r = Obs.Export.recorder () in
  Obs.Sink.instant ~cat:"t" "weird\"name\\with\nnewline"
    ~args:[ ("msg", Obs.Event.Str "tab\there \"quoted\"") ];
  Obs.Sink.reset ();
  let events = Obs.Export.events r in
  let doc = parse_json (Obs.Export.to_chrome events) in
  (match member "traceEvents" doc with
   | Some (Arr rows) ->
     let data =
       List.find (fun row -> string_member "ph" row = Some "i") rows
     in
     Alcotest.(check (option string)) "name round-trips"
       (Some "weird\"name\\with\nnewline") (string_member "name" data)
   | _ -> Alcotest.fail "no traceEvents");
  List.iter (fun line -> ignore (parse_json line))
    (String.split_on_char '\n' (Obs.Export.to_jsonl events)
     |> List.filter (fun l -> l <> ""))

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)

let test_metrics_duplicate_registration () =
  Obs.Metrics.reset ();
  let c = Obs.Metrics.counter ~help:"first help" "obs_dup_total" in
  (* Same help and empty help are idempotent lookups of the same
     instance; only a conflicting non-empty help or a type clash is a
     registration bug and fails fast. *)
  Obs.Metrics.inc (Obs.Metrics.counter ~help:"first help" "obs_dup_total");
  Obs.Metrics.inc (Obs.Metrics.counter "obs_dup_total");
  Alcotest.(check int) "one shared instance" 2 (Obs.Metrics.counter_value c);
  let raises f =
    match f () with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "conflicting help raises" true
    (raises (fun () -> Obs.Metrics.counter ~help:"second help" "obs_dup_total"));
  Alcotest.(check bool) "type clash raises" true
    (raises (fun () -> Obs.Metrics.gauge "obs_dup_total"));
  (* A first registration with empty help accepts one later non-empty
     help (it cannot change what was already rendered). *)
  ignore (Obs.Metrics.gauge "obs_dup_gauge");
  ignore (Obs.Metrics.gauge ~help:"late help" "obs_dup_gauge");
  Alcotest.(check bool) "histogram help clash raises" true
    (raises (fun () ->
         ignore (Obs.Metrics.histogram ~help:"a" "obs_dup_seconds");
         Obs.Metrics.histogram ~help:"b" "obs_dup_seconds"));
  Obs.Metrics.reset ()

let test_metrics_render () =
  Obs.Metrics.reset ();
  let c = Obs.Metrics.counter ~help:"test counter" "obs_test_total" in
  Obs.Metrics.inc c;
  Obs.Metrics.inc ~by:4 c;
  let g = Obs.Metrics.gauge "obs_test_gauge" in
  Obs.Metrics.set g 2.5;
  let h =
    Obs.Metrics.histogram ~buckets:[| 0.1; 1.0 |] "obs_test_seconds"
  in
  Obs.Metrics.observe h 0.05;
  Obs.Metrics.observe h 0.5;
  Obs.Metrics.observe h 5.0;
  let text = Obs.Metrics.render () in
  let has line = Alcotest.(check bool) line true
      (List.mem line (String.split_on_char '\n' text))
  in
  has "# HELP obs_test_total test counter";
  has "# TYPE obs_test_total counter";
  has "obs_test_total 5";
  has "# TYPE obs_test_gauge gauge";
  has "obs_test_gauge 2.5";
  has "# TYPE obs_test_seconds histogram";
  has "obs_test_seconds_bucket{le=\"0.1\"} 1";
  has "obs_test_seconds_bucket{le=\"1\"} 2";
  has "obs_test_seconds_bucket{le=\"+Inf\"} 3";
  has "obs_test_seconds_sum 5.55";
  has "obs_test_seconds_count 3";
  (* Every non-comment line is "name[{label}] value". *)
  List.iter
    (fun line ->
       if line <> "" && not (String.length line >= 1 && line.[0] = '#') then
         match String.index_opt line ' ' with
         | Some i ->
           let v = String.sub line (i + 1) (String.length line - i - 1) in
           Alcotest.(check bool) ("numeric value in: " ^ line) true
             (float_of_string_opt v <> None)
         | None -> Alcotest.failf "malformed line %s" line)
    (String.split_on_char '\n' text);
  Obs.Metrics.reset ()

let test_metrics_bridge () =
  Obs.Metrics.reset ();
  Obs.Sink.reset ();
  let id = Obs.Export.metrics_bridge () in
  ignore (Engine.Session.run (Engine.Session.make ()) two_path_testbench);
  Obs.Sink.unsubscribe id;
  let text = Obs.Metrics.render () in
  Alcotest.(check bool) "path counter" true
    (List.mem "engine_path_total 2" (String.split_on_char '\n' text));
  Alcotest.(check bool) "query duration histogram" true
    (List.exists
       (fun l ->
          String.length l >= 26
          && String.sub l 0 26 = "solver_query_seconds_count")
       (String.split_on_char '\n' text));
  Obs.Metrics.reset ();
  Obs.Sink.reset ()

(* ------------------------------------------------------------------ *)
(* Progress                                                            *)

let test_progress_lines () =
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  Obs.Progress.configure ~out:ppf ~interval:1 ();
  ignore (Engine.Session.run (Engine.Session.make ()) two_path_testbench);
  Obs.Progress.disable ();
  Format.pp_print_flush ppf ();
  let lines =
    String.split_on_char '\n' (Buffer.contents buf)
    |> List.filter (fun l -> l <> "")
  in
  (* header + one line per path *)
  Alcotest.(check int) "header + 2 stats lines" 3 (List.length lines);
  List.iter
    (fun l ->
       Alcotest.(check bool) ("obs-prefixed: " ^ l) true
         (String.length l >= 5 && String.sub l 0 5 = "[obs]"))
    lines;
  Alcotest.(check (option int)) "disabled afterwards" None
    (Obs.Progress.interval ())

let test_progress_due () =
  Obs.Progress.configure ~interval:3 ();
  Alcotest.(check bool) "not due at 1" false (Obs.Progress.due ~paths:1);
  Alcotest.(check bool) "due at 3" true (Obs.Progress.due ~paths:3);
  Alcotest.(check bool) "not due at 4" false (Obs.Progress.due ~paths:4);
  Alcotest.(check bool) "due at 6" true (Obs.Progress.due ~paths:6);
  Obs.Progress.disable ();
  Alcotest.(check bool) "never due when off" false (Obs.Progress.due ~paths:3)

(* ------------------------------------------------------------------ *)
(* Report integration                                                  *)

let test_report_breakdown () =
  let report = Engine.Session.run (Engine.Session.make ()) two_path_testbench in
  let s = report.Engine.solver_stats in
  Alcotest.(check bool) "queries counted" true
    (s.Smt.Solver.Stats.queries > 0);
  Alcotest.(check bool) "stage times sum below total" true
    (s.Smt.Solver.Stats.interval_time +. s.Smt.Solver.Stats.bitblast_time
     +. s.Smt.Solver.Stats.sat_time
     <= s.Smt.Solver.Stats.time +. 1e-6);
  let r = Symsysc.Report.make "OBS" report in
  let line = Format.asprintf "%a" Symsysc.Report.pp r in
  List.iter
    (fun needle ->
       let contains hay needle =
         let nh = String.length hay and nn = String.length needle in
         let rec go i = i + nn <= nh
                        && (String.sub hay i nn = needle || go (i + 1)) in
         go 0
       in
       Alcotest.(check bool) ("pp mentions " ^ needle) true
         (contains line needle))
    [ "queries"; "cache" ];
  ignore (Format.asprintf "%a" Symsysc.Report.pp_solver_breakdown r)

let suite =
  [
    ("sink: disabled without subscribers", `Quick,
     test_sink_disabled_without_subscribers);
    ("sink: with_span", `Quick, test_sink_with_span);
    ("events: engine run", `Quick, test_engine_events);
    ("events: scheduler", `Quick, test_scheduler_events);
    ("events: router", `Quick, test_router_events);
    ("export: chrome trace structure", `Quick, test_chrome_trace_structure);
    ("export: jsonl structure", `Quick, test_jsonl_structure);
    ("export: json escaping", `Quick, test_json_escaping);
    ("metrics: duplicate registration", `Quick,
     test_metrics_duplicate_registration);
    ("metrics: prometheus render", `Quick, test_metrics_render);
    ("metrics: event bridge", `Quick, test_metrics_bridge);
    ("progress: stats lines", `Quick, test_progress_lines);
    ("progress: due cadence", `Quick, test_progress_due);
    ("report: solver breakdown", `Quick, test_report_breakdown);
  ]
